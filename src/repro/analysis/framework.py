"""The repro-lint checker framework.

This package encodes the repo's hard-won runtime invariants — the bug
classes fixed in PRs 2/3/5/6 — as named static rules over the ``ast``
module, so violations are caught at lint time instead of as biased
marginals or stale serving reads at run time.

Pieces:

* :class:`Finding` — one violation: rule id, file, line, message and
  the enclosing ``Class.method`` symbol.  Its :meth:`fingerprint` is
  deliberately line-number-free so baselines survive unrelated edits.
* :class:`Rule` — an :class:`ast.NodeVisitor` subclass with a rule id,
  a one-line title, and a path ``scope`` restricting which modules it
  runs over (``repro/fg/`` invariants do not apply to ``repro/db/``).
  The base class tracks the class/function nesting stack so rules can
  report precise symbols.
* :class:`SourceFile` — parsed source plus its per-line
  ``# repro-lint: disable=RULE -- justification`` suppressions
  (comments are read with :mod:`tokenize`, so a ``#`` inside a string
  never parses as one).
* :func:`analyze` / :func:`analyze_paths` — the engine: run every
  in-scope rule, apply suppressions and the optional baseline, and
  emit hygiene findings (rule ``RL006``) for suppressions that are
  unused or carry no justification.

Adding a rule: subclass :class:`Rule` in ``repro/analysis/rules/``,
set ``rule_id``/``title``/``scope``, override the ``visit_*`` methods
you need (call ``self.generic_visit(node)`` to keep descending), and
register the class in ``repro.analysis.rules.ALL_RULES``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "Suppression",
    "AnalysisReport",
    "analyze",
    "analyze_paths",
    "relative_module_path",
]

HYGIENE_RULE = "RL006"

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*disable=(?P<rules>[A-Z0-9*,\s]+?)"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baselines: everything but the line
        number, which drifts under unrelated edits."""
        return f"{self.rule}|{self.path}|{self.symbol}|{self.message}"

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    used: bool = False

    def matches(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


class SourceFile:
    """One parsed module plus its suppression comments."""

    def __init__(self, path: Path, text: str, rel_path: Optional[str] = None):
        self.path = path
        self.rel_path = rel_path if rel_path is not None else relative_module_path(path)
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.suppressions: Dict[int, Suppression] = _parse_suppressions(text)

    @classmethod
    def read(cls, path: Path) -> "SourceFile":
        return cls(path, path.read_text(encoding="utf-8"))

    def suppression_for(self, line: int, rule: str) -> Optional[Suppression]:
        suppression = self.suppressions.get(line)
        if suppression is not None and suppression.matches(rule):
            return suppression
        return None


def relative_module_path(path: Path) -> str:
    """``repro/fg/graph.py`` for any absolute or relative spelling —
    the path rules scope against.  Paths outside a ``repro`` package
    are returned as given (posix)."""
    parts = path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.as_posix()


_SKIP_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


def _parse_suppressions(text: str) -> Dict[int, Suppression]:
    """Suppressions keyed by the source line they silence.

    An inline comment silences its own line; a standalone comment line
    (nothing but the comment) silences the next code line, so long
    justifications can live above the statement they excuse.
    """
    out: Dict[int, Suppression] = {}
    pending: List[Suppression] = []

    def _attach(line: int, suppression: Suppression) -> None:
        existing = out.get(line)
        if existing is not None:
            existing.rules = tuple(dict.fromkeys(existing.rules + suppression.rules))
            if not existing.justification:
                existing.justification = suppression.justification
        else:
            out[line] = suppression

    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                match = _SUPPRESS_RE.search(token.string)
                if match is None:
                    continue
                rules = tuple(
                    r.strip()
                    for r in match.group("rules").split(",")
                    if r.strip()
                )
                suppression = Suppression(
                    line=token.start[0],
                    rules=rules,
                    justification=(match.group("why") or "").strip(),
                )
                if token.line[: token.start[1]].strip():
                    _attach(token.start[0], suppression)
                else:
                    pending.append(suppression)
            elif token.type not in _SKIP_TOKENS and pending:
                for suppression in pending:
                    _attach(token.start[0], suppression)
                pending = []
    except tokenize.TokenError:  # pragma: no cover - unparsable edge
        pass
    for suppression in pending:  # trailing comment with no code after it
        _attach(suppression.line, suppression)
    return out


class Rule(ast.NodeVisitor):
    """Base checker: one rule over one source file.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`scope`
    (path prefixes relative to the ``repro`` package root; empty means
    every module).  The visitor maintains ``class_stack`` /
    ``func_stack`` so :meth:`report` can attribute findings to a
    ``Class.method`` symbol.
    """

    rule_id: str = "RL000"
    title: str = ""
    scope: Tuple[str, ...] = ()

    def __init__(self, source: SourceFile):
        self.source = source
        self.findings: List[Finding] = []
        self.class_stack: List[ast.ClassDef] = []
        self.func_stack: List[ast.AST] = []

    # -- scope ----------------------------------------------------------
    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        if not cls.scope:
            return True
        return any(rel_path.startswith(prefix) for prefix in cls.scope)

    # -- reporting ------------------------------------------------------
    def symbol(self) -> str:
        parts = [c.name for c in self.class_stack]
        parts += [getattr(f, "name", "<lambda>") for f in self.func_stack]
        return ".".join(parts)

    def report(self, node: ast.AST, message: str, symbol: Optional[str] = None) -> None:
        finding = Finding(
            rule=self.rule_id,
            path=self.source.rel_path,
            line=getattr(node, "lineno", 1),
            message=message,
            symbol=self.symbol() if symbol is None else symbol,
        )
        if finding not in self.findings:  # e.g. loop bodies walked twice
            self.findings.append(finding)

    # -- stack maintenance ---------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        try:
            self.check_class(node)
            self.generic_visit(node)
        finally:
            self.class_stack.pop()

    def _visit_function(self, node: ast.AST) -> None:
        self.func_stack.append(node)
        try:
            self.check_function(node)
            self.generic_visit(node)
        finally:
            self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- hooks ----------------------------------------------------------
    def check_class(self, node: ast.ClassDef) -> None:
        """Called on entering every class (stack already pushed)."""

    def check_function(self, node: ast.AST) -> None:
        """Called on entering every (async) function."""

    def run(self) -> List[Finding]:
        self.visit(self.source.tree)
        return self.findings


@dataclass
class AnalysisReport:
    """The engine's output: surviving findings plus bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            out.append(path)
    return out


def analyze(
    sources: Iterable[SourceFile],
    rule_classes: Sequence[Type[Rule]],
    baseline: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Run ``rule_classes`` over ``sources`` and post-process findings
    through suppressions, the baseline, and suppression hygiene."""
    report = AnalysisReport(
        rules_run=tuple(rule.rule_id for rule in rule_classes)
    )
    baseline_set = set(baseline or ())
    survivors: List[Finding] = []
    for source in sources:
        report.files += 1
        raw: List[Finding] = []
        for rule_class in rule_classes:
            if rule_class.applies_to(source.rel_path):
                raw.extend(rule_class(source).run())
        for finding in raw:
            suppression = source.suppression_for(finding.line, finding.rule)
            if suppression is not None:
                suppression.used = True
                report.suppressed += 1
                continue
            if finding.fingerprint() in baseline_set:
                report.baselined += 1
                continue
            survivors.append(finding)
        # Suppression hygiene (RL006): every disable comment must
        # silence something real and say why.
        for suppression in source.suppressions.values():
            if not suppression.used:
                survivors.append(
                    Finding(
                        rule=HYGIENE_RULE,
                        path=source.rel_path,
                        line=suppression.line,
                        message=(
                            "useless suppression: no "
                            + "/".join(suppression.rules)
                            + " finding on this line"
                        ),
                    )
                )
            elif not suppression.justification:
                survivors.append(
                    Finding(
                        rule=HYGIENE_RULE,
                        path=source.rel_path,
                        line=suppression.line,
                        message=(
                            "suppression without justification: append "
                            "'-- <why this is safe>'"
                        ),
                    )
                )
    survivors.sort(key=Finding.sort_key)
    report.findings = survivors
    return report


def analyze_paths(
    paths: Sequence[Path],
    rule_classes: Sequence[Type[Rule]],
    baseline: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """:func:`analyze` over every ``.py`` file under ``paths``."""
    sources = [SourceFile.read(p) for p in _iter_python_files(paths)]
    return analyze(sources, rule_classes, baseline=baseline)
