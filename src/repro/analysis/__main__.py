"""``python -m repro.analysis`` — run the repro-lint invariant suite.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.framework import analyze_paths
from repro.analysis.reporting import (
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.rules import ALL_RULES, RULE_TITLES, rules_by_id


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST invariant checkers encoding this repo's "
            "hard-won runtime contracts (pickle safety, cache "
            "invalidation, RNG/async/DML discipline)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", metavar="RL00X[,RL00Y]",
        help="run only these rule ids (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file of accepted finding fingerprints",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, title in sorted(RULE_TITLES.items()):
            print(f"{rule_id}  {title}")
        return 0
    try:
        rules = (
            rules_by_id([r.strip() for r in args.rules.split(",") if r.strip()])
            if args.rules
            else list(ALL_RULES)
        )
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "repro-lint: no such path(s): "
            + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2
    baseline = load_baseline(Path(args.baseline)) if args.baseline else None
    try:
        report = analyze_paths(paths, rules, baseline=baseline)
    except SyntaxError as exc:
        print(f"repro-lint: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(Path(args.write_baseline), report.findings)
        print(
            f"repro-lint: wrote {len(report.findings)} fingerprint(s) to "
            f"{args.write_baseline}"
        )
        return 0
    output = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    print(output)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
