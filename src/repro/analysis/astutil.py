"""Small shared AST helpers for the repro-lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

__all__ = [
    "dotted_name",
    "call_name",
    "self_attribute",
    "walk_calls",
    "local_function_names",
    "contains_lambda",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target (``random.randint``,
    ``self.invalidate_adjacency``), else ``None``."""
    return dotted_name(node.func)


def self_attribute(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.attr``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def local_function_names(func: ast.AST) -> Set[str]:
    """Names of functions defined *inside* ``func``'s body (closures —
    the unpicklable kind)."""
    out: Set[str] = set()
    body = getattr(func, "body", [])
    for stmt in body:
        for child in ast.walk(stmt):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.add(child.name)
    return out


def contains_lambda(node: ast.AST) -> Optional[ast.Lambda]:
    """The first Lambda anywhere under ``node``, else ``None``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Lambda):
            return child
    return None
