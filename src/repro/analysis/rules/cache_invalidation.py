"""RL002 — cache-invalidation discipline in ``repro/fg/``.

The PR-3/PR-5 bug class: the factor graph's performance rests on
caches keyed by structure that is assumed frozen — per-variable static
adjacency, pooled template instances, memoized factor scores keyed by
``Weights.version``.  Any method that mutates the underlying structure
(``FactorGraph.variables``/``_by_name``/``templates``, a template's
weights or feature functions, ``Weights._values``) and reaches *any*
exit without running the matching invalidation leaves a cache serving
factors from a world that no longer exists — MCMC keeps accepting
proposals scored against stale structure, silently biasing marginals.

The checker runs a small path-sensitive walk over each method of the
guarded classes: a guarded mutation sets *dirty*; an invalidator call
(``invalidate_adjacency``, ``clear_caches``, ``invalidate``,
``clear_cache``, ``set_caching``, a ``Weights.set``/``_version`` bump)
sets *clean*; every exit — ``return``, ``raise``, or falling off the
end — while dirty is a finding.  ``if``/``else`` branches merge
conservatively (dirty if either branch is, clean only if both are);
loop bodies are walked twice so a ``raise`` that follows a mutation
made by an *earlier iteration* is caught (the ``add_variables``
half-mutation bug this rule encodes); a ``finally`` block containing
an invalidator covers every exit of its ``try``.

``__init__``/``__getstate__``/``__setstate__`` are exempt: they build
or serialize fresh state, with nothing cached against it yet.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.analysis.astutil import self_attribute, walk_calls
from repro.analysis.framework import Rule

__all__ = ["CacheInvalidationRule"]

MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
}

EXEMPT_METHODS = {"__init__", "__new__", "__getstate__", "__setstate__"}


@dataclass
class _GuardSpec:
    attrs: Set[str]
    invalidators: Set[str]
    version_attr: Optional[str] = None

    def describe_invalidators(self) -> str:
        names = sorted(self.invalidators)
        if self.version_attr:
            names.append(f"{self.version_attr} bump")
        return "/".join(names)


_FACTOR_GRAPH = _GuardSpec(
    attrs={"variables", "_by_name", "templates"},
    invalidators={"invalidate_adjacency", "clear_caches", "set_caching"},
)
_WEIGHTS = _GuardSpec(
    attrs={"_values"},
    invalidators={"set"},
    version_attr="_version",
)
_TEMPLATE = _GuardSpec(
    attrs={"weights", "_feature_fn", "_neighbors_fn"},
    invalidators={"clear_cache", "invalidate", "set_caching", "evict_pair"},
)

BY_CLASS = {"FactorGraph": _FACTOR_GRAPH, "Weights": _WEIGHTS}


def _spec_for_class(node: ast.ClassDef) -> Optional[_GuardSpec]:
    spec = BY_CLASS.get(node.name)
    if spec is not None:
        return spec
    if node.name.endswith("Template"):
        return _TEMPLATE
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id == "Template":
            return _TEMPLATE
    return None


@dataclass
class _State:
    """Path state: the last un-invalidated guarded mutation (if any),
    whether an invalidator ran, and whether the path already exited
    (``return``/``raise`` — checked at that point, dead afterwards)."""

    dirty_attr: Optional[str] = None
    invalidated: bool = False
    terminated: bool = False
    dirty_node: Optional[ast.AST] = None

    def copy(self) -> "_State":
        return _State(
            self.dirty_attr, self.invalidated, self.terminated, self.dirty_node
        )


def _merge(a: _State, b: _State) -> _State:
    # A branch that already exited contributes nothing downstream.
    if a.terminated and not b.terminated:
        return b.copy()
    if b.terminated and not a.terminated:
        return a.copy()
    return _State(
        dirty_attr=a.dirty_attr or b.dirty_attr,
        invalidated=a.invalidated and b.invalidated,
        terminated=a.terminated and b.terminated,
        dirty_node=a.dirty_node if a.dirty_attr else b.dirty_node,
    )


class CacheInvalidationRule(Rule):
    rule_id = "RL002"
    title = (
        "factor-graph/weights/template structural mutations must "
        "invalidate the dependent caches on every exit path"
    )
    scope = ("repro/fg/",)

    # -- entry ----------------------------------------------------------
    def check_function(self, node: ast.AST) -> None:
        if len(self.func_stack) != 1 or not self.class_stack:
            return  # only direct methods of a class
        if getattr(node, "name", "") in EXEMPT_METHODS:
            return
        spec = _spec_for_class(self.class_stack[-1])
        if spec is None:
            return
        self._spec = spec
        self._method = getattr(node, "name", "<method>")
        self._finally_cover = 0
        state = self._process_block(getattr(node, "body", []), _State())
        self._check_exit(node, state, "falls off the end")

    # -- classification -------------------------------------------------
    def _mutated_attr(self, stmt: ast.stmt) -> Optional[str]:
        """The guarded attr this statement mutates, else ``None``."""
        spec = self._spec
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            attr = self_attribute(base)
            if attr is not None and attr in spec.attrs:
                return attr
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
            ):
                attr = self_attribute(func.value)
                if attr is not None and attr in spec.attrs:
                    return attr
        return None

    def _invalidates(self, node: ast.AST) -> bool:
        spec = self._spec
        for call in walk_calls(node):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in spec.invalidators
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                return True
        if spec.version_attr is not None:
            for child in ast.walk(node):
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        if self_attribute(target) == spec.version_attr:
                            return True
        return False

    # -- path walk ------------------------------------------------------
    def _check_exit(self, node: ast.AST, state: _State, how: str) -> None:
        if state.terminated:
            return
        if state.dirty_attr and not state.invalidated and not self._finally_cover:
            # Anchor at the mutation site, not the exit: that is the
            # line a suppression naturally sits on.
            self.report(
                state.dirty_node if state.dirty_node is not None else node,
                f"{how} with self.{state.dirty_attr} mutated but no "
                f"{self._spec.describe_invalidators()} call on this path "
                "— dependent caches keep serving the old structure",
                symbol=f"{self.class_stack[-1].name}.{self._method}",
            )

    def _process_block(self, stmts: Sequence[ast.stmt], state: _State) -> _State:
        for stmt in stmts:
            state = self._process_stmt(stmt, state)
        return state

    def _process_stmt(self, stmt: ast.stmt, state: _State) -> _State:
        if isinstance(stmt, ast.Return):
            self._check_exit(stmt, state, "returns")
            state = state.copy()
            state.terminated = True
            return state
        if isinstance(stmt, ast.Raise):
            self._check_exit(stmt, state, "raises")
            state = state.copy()
            state.terminated = True
            return state
        if isinstance(stmt, ast.If):
            then = self._process_block(stmt.body, state.copy())
            other = self._process_block(stmt.orelse, state.copy())
            return _merge(then, other)
        if isinstance(stmt, (ast.For, ast.While)):
            # Two passes: iteration N may mutate, iteration N+1 raise.
            once = self._process_block(stmt.body, state.copy())
            twice = self._process_block(stmt.body, once)
            after = _merge(state, twice)
            return self._process_block(stmt.orelse, after)
        if isinstance(stmt, ast.Try):
            covered = any(self._invalidates(s) for s in stmt.finalbody)
            if covered:
                self._finally_cover += 1
            body = self._process_block(stmt.body, state.copy())
            body = self._process_block(stmt.orelse, body)
            merged = body
            for handler in stmt.handlers:
                handled = self._process_block(
                    handler.body, _merge(state, body).copy()
                )
                merged = _merge(merged, handled)
            if covered:
                self._finally_cover -= 1
            return self._process_block(stmt.finalbody, merged)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._process_block(stmt.body, state)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # nested definitions run later, not on this path
        # Plain statement: invalidation first (a call both mutating and
        # invalidating — e.g. Weights.set — counts as clean).
        if self._invalidates(stmt):
            state = state.copy()
            state.invalidated = True
        attr = self._mutated_attr(stmt)
        if attr is not None:
            state = state.copy()
            state.dirty_attr = attr
            state.dirty_node = stmt
        return state
