"""RL005 — DML must route through ``Session._after_dml``.

The PR-5 bug class, verbatim: ``Session.execute`` used to run DML and
return without touching the runner cache, so every cached
parallel/sharded runner kept serving marginals computed against the
pre-update world — forever.  The fix made ``Session._after_dml`` the
single choke point enforcing "no cached runner serves pre-update
marginals" (live repair, re-pool, or invalidate).

This rule keeps it the single choke point: any function outside the
``repro/db/`` layer that calls ``execute_dml(...)`` (the delta-
producing DML executor) must also call ``_after_dml(...)`` in the same
body — committing a delta and dropping it on the floor is exactly the
historical bug.  Direct ``Table``-mutation calls on a session's
database (``self.database.table(...).insert/delete(...)``) outside
``repro/db/`` and ``repro/fg/`` are flagged for the same reason: they
bypass both the delta recorders' contract and the version bump.
(``repro/fg/`` is exempt — ``FieldVariable.flush`` writing accepted
proposals back through ``Database.update`` *is* the sampling contract,
observed by recorders.)
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import call_name, walk_calls
from repro.analysis.framework import Rule

__all__ = ["DmlRoutingRule"]

TABLE_MUTATORS = {"insert", "delete"}


class DmlRoutingRule(Rule):
    rule_id = "RL005"
    title = (
        "every execute_dml call must be paired with _after_dml so no "
        "cached runner serves pre-update marginals"
    )
    scope = ("repro/",)

    EXEMPT_PREFIXES = ("repro/db/", "repro/fg/", "repro/analysis/")

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        if any(rel_path.startswith(prefix) for prefix in cls.EXEMPT_PREFIXES):
            return False
        return super().applies_to(rel_path)

    def check_function(self, node: ast.AST) -> None:
        body = getattr(node, "body", [])
        dml_calls = []
        has_after_dml = False
        for stmt in body:
            for call in walk_calls(stmt):
                name = call_name(call) or ""
                tail = name.split(".")[-1]
                if tail == "execute_dml":
                    dml_calls.append(call)
                elif tail == "_after_dml":
                    has_after_dml = True
        if dml_calls and not has_after_dml:
            for call in dml_calls:
                self.report(
                    call,
                    "execute_dml commits a delta but this function never "
                    "calls _after_dml; cached runners will keep serving "
                    "pre-update marginals (the PR-5 staleness bug)",
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in TABLE_MUTATORS
            and isinstance(func.value, ast.Call)
            and (call_name(func.value) or "").split(".")[-1] == "table"
        ):
            self.report(
                node,
                f"direct table().{func.attr}() bypasses the DML executor: "
                "no delta, no version bump, no _after_dml routing — go "
                "through Session.execute or execute_dml",
            )
        self.generic_visit(node)
