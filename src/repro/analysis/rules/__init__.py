"""The repro-lint rule registry.

Each module encodes one invariant family; ``ALL_RULES`` is the order
they run in.  ``RL006`` (suppression hygiene) is implemented by the
engine itself, not a visitor — see
:func:`repro.analysis.framework.analyze`.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.framework import HYGIENE_RULE, Rule
from repro.analysis.rules.pickle_safety import PickleSafetyRule
from repro.analysis.rules.cache_invalidation import CacheInvalidationRule
from repro.analysis.rules.rng_discipline import RngDisciplineRule
from repro.analysis.rules.async_discipline import AsyncDisciplineRule
from repro.analysis.rules.dml_routing import DmlRoutingRule
from repro.analysis.rules.resilience_discipline import ResilienceDisciplineRule

__all__ = ["ALL_RULES", "RULE_TITLES", "rules_by_id"]

ALL_RULES: List[Type[Rule]] = [
    PickleSafetyRule,
    CacheInvalidationRule,
    RngDisciplineRule,
    AsyncDisciplineRule,
    DmlRoutingRule,
    ResilienceDisciplineRule,
]

RULE_TITLES: Dict[str, str] = {
    **{rule.rule_id: rule.title for rule in ALL_RULES},
    HYGIENE_RULE: "suppression hygiene: every disable comment must "
    "silence a real finding and carry a justification",
}


def rules_by_id(ids: List[str]) -> List[Type[Rule]]:
    known = {rule.rule_id: rule for rule in ALL_RULES}
    missing = [i for i in ids if i not in known]
    if missing:
        raise KeyError(f"unknown rule id(s): {', '.join(missing)}")
    return [known[i] for i in ids]
