"""RL004 — async/lock discipline in the serving layer.

The ``repro/serve/`` asyncio layer multiplexes every tenant onto one
event loop, so a single blocking call inside an ``async def`` stalls
*all* tenants for its duration — the latency bench's p99 is exactly as
good as the worst synchronous call that sneaks onto the loop.  And its
zero-stale-reads guarantee rests on ``(version, snapshot)`` state being
read and written atomically under the engine lock; touching that state
off-lock reintroduces the torn-read window the lock exists to close.

Flagged, inside ``repro/serve/``:

* **blocking calls directly inside an ``async def``** — ``time.sleep``,
  pipe ``recv``/``recv_bytes``, ``Database.from_snapshot``, database
  ``snapshot()``, ``evaluate_rows``, engine ``execute``, worker
  ``run``/``rebase``, ``pool.start`` — run them in a worker thread
  (``await asyncio.to_thread(fn, ...)``) instead.  Passing the callable
  *to* ``asyncio.to_thread`` is fine: only direct call sites trip the
  rule.  Bodies of functions nested inside the coroutine are skipped
  (they execute when called, which is what the rule checks at that
  site).
* **lock-guarded attribute access outside the lock** — any ``self``
  attribute that is assigned somewhere inside an ``async with
  <...lock...>:`` block of a class is treated as guarded; reading or
  writing it in an ``async def`` of the same class outside such a
  block is a finding.  (Synchronous helpers are exempt — they cannot
  await, so they can only run while their caller holds the lock; the
  docstring contract carries that obligation.)
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.astutil import call_name, dotted_name, self_attribute
from repro.analysis.framework import Rule

__all__ = ["AsyncDisciplineRule"]

BLOCKING_DOTTED = {"time.sleep"}
BLOCKING_ATTRS = {"recv", "recv_bytes", "from_snapshot", "snapshot", "rebase"}
BLOCKING_BARE = {"evaluate_rows", "sleep"}
# (attr called, receiver tail) pairs too ambiguous to flag on name alone.
BLOCKING_RECEIVER = {
    ("execute", "engine"),
    ("_route", "engine"),
    ("run", "worker"),
    ("start", "pool"),
}


def _lock_like(node: ast.expr) -> bool:
    name = dotted_name(node)
    if name is None and isinstance(node, ast.Call):
        name = call_name(node)
    return name is not None and "lock" in name.lower()


class AsyncDisciplineRule(Rule):
    rule_id = "RL004"
    title = (
        "no blocking calls inside async def; lock-guarded attributes "
        "must not be touched outside the lock"
    )
    scope = ("repro/serve/",)

    # ------------------------------------------------------------------
    def check_class(self, node: ast.ClassDef) -> None:
        guarded = self._guarded_attrs(node)
        for item in node.body:
            if isinstance(item, ast.AsyncFunctionDef):
                self._check_async_function(item, guarded)

    @staticmethod
    def _guarded_attrs(cls: ast.ClassDef) -> Set[str]:
        """Attributes assigned under an ``async with <lock>`` anywhere
        in the class body."""
        guarded: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.AsyncWith):
                continue
            if not any(_lock_like(item.context_expr) for item in node.items):
                continue
            for child in ast.walk(node):
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        attr = self_attribute(target)
                        if attr is not None:
                            guarded.add(attr)
        return guarded

    def check_function(self, node: ast.AST) -> None:
        # Module-level coroutines (no enclosing class) still get the
        # blocking-call check; methods are handled from check_class so
        # the class-wide guarded-attribute set is known.
        if isinstance(node, ast.AsyncFunctionDef) and not self.class_stack:
            self._check_async_function(node, set())

    # ------------------------------------------------------------------
    def _check_async_function(
        self, func: ast.AsyncFunctionDef, guarded: Set[str]
    ) -> None:
        self._walk_async(func.body, guarded, under_lock=False, func=func)

    def _walk_async(
        self,
        stmts: List[ast.stmt],
        guarded: Set[str],
        under_lock: bool,
        func: ast.AsyncFunctionDef,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs execute at their call sites
            if isinstance(stmt, ast.AsyncWith) and any(
                _lock_like(item.context_expr) for item in stmt.items
            ):
                for item in stmt.items:
                    self._check_exprs([item.context_expr], guarded, True, func)
                self._walk_async(stmt.body, guarded, True, func)
                continue
            for child, child_stmts in _compound_parts(stmt):
                self._check_exprs(child, guarded, under_lock, func)
                for block in child_stmts:
                    self._walk_async(block, guarded, under_lock, func)

    def _check_exprs(
        self,
        exprs: List[ast.expr],
        guarded: Set[str],
        under_lock: bool,
        func: ast.AsyncFunctionDef,
    ) -> None:
        symbol = ".".join(
            [c.name for c in self.class_stack] + [func.name]
        )
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    blocking = self._blocking_reason(node)
                    if blocking is not None:
                        self.report(
                            node,
                            f"blocking call {blocking} inside async def "
                            f"{func.name!r} stalls every tenant on the "
                            "event loop; wrap it in "
                            "await asyncio.to_thread(...)",
                            symbol=symbol,
                        )
                if not under_lock and isinstance(node, ast.Attribute):
                    attr = self_attribute(node)
                    if attr is not None and attr in guarded:
                        self.report(
                            node,
                            f"self.{attr} is assigned under the engine "
                            "lock elsewhere but touched here without it; "
                            "reads/writes outside the lock tear the "
                            "(version, snapshot) atomicity",
                            symbol=symbol,
                        )

    @staticmethod
    def _blocking_reason(node: ast.Call) -> Optional[str]:
        name = call_name(node)
        if name is None:
            return None
        if name in BLOCKING_DOTTED:
            return f"{name}()"
        parts = name.split(".")
        if len(parts) == 1:
            return f"{name}()" if name in BLOCKING_BARE else None
        tail = parts[-1]
        receiver = parts[-2]
        if tail in BLOCKING_ATTRS:
            return f"{name}()"
        if (tail, receiver) in BLOCKING_RECEIVER:
            return f"{name}()"
        return None


def _compound_parts(
    stmt: ast.stmt,
) -> List[Tuple[List[ast.expr], List[List[ast.stmt]]]]:
    """(expressions evaluated by the statement head, nested statement
    blocks) — so the walk stays statement-accurate about lock scope."""
    if isinstance(stmt, ast.If):
        return [([stmt.test], [stmt.body, stmt.orelse])]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [([stmt.iter, stmt.target], [stmt.body, stmt.orelse])]
    if isinstance(stmt, ast.While):
        return [([stmt.test], [stmt.body, stmt.orelse])]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [
            (
                [item.context_expr for item in stmt.items],
                [stmt.body],
            )
        ]
    if isinstance(stmt, ast.Try):
        return [
            (
                [],
                [stmt.body, stmt.orelse, stmt.finalbody]
                + [handler.body for handler in stmt.handlers],
            )
        ]
    # Simple statement: every expression it contains.
    exprs: List[ast.expr] = [
        node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)
    ]
    return [(exprs, [])]
