"""RL003 — RNG discipline: no ambient randomness in the library.

Every benchmark number in this repo (BENCH_*.json), every bit-identity
equivalence test (cached vs uncached scoring, sharded vs unsharded,
repaired vs rebuilt graphs) and the multiprocess backend's
"identical pooled marginals for fixed seeds" contract depend on one
rule: randomness flows only through explicitly seeded, chain-owned
:class:`random.Random` instances (see :mod:`repro.rng`).

Flagged, anywhere under ``repro/``:

* calls to the module-level ``random.*`` functions (``random.random``,
  ``random.randint``, ``random.choice``, ``random.shuffle``,
  ``random.seed``, ...) — they draw from the interpreter-global RNG
  that any import or library call may also advance;
* any use of ``numpy.random``/``np.random`` — same global-state
  problem, plus numpy is not a dependency of this repo;
* ``random.Random()`` with no arguments — an unseeded instance seeds
  itself from the OS, so two runs never reproduce;
* seeding from the clock: ``time.time()``/``time.time_ns()`` (or
  ``datetime.now()``) passed to ``Random(...)``, ``.seed(...)`` or
  ``make_rng(...)``.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import call_name, dotted_name
from repro.analysis.framework import Rule

__all__ = ["RngDisciplineRule"]

MODULE_LEVEL_FNS = {
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "seed", "triangular", "vonmisesvariate",
}

CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic_ns",
    "datetime.now", "datetime.datetime.now", "datetime.utcnow",
}

SEEDING_TARGETS = {"Random", "seed", "make_rng", "SystemRandom"}


class RngDisciplineRule(Rule):
    rule_id = "RL003"
    title = (
        "randomness must flow through seeded chain-owned Random "
        "instances, never the global random module or the clock"
    )
    scope = ("repro/",)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None:
            parts = name.split(".")
            if parts[0] == "random" and len(parts) == 2:
                if parts[1] in MODULE_LEVEL_FNS:
                    self.report(
                        node,
                        f"call to global {name}() — draw from a seeded, "
                        "chain-owned random.Random (repro.rng.make_rng) "
                        "so runs reproduce",
                    )
                elif parts[1] == "Random" and not node.args and not node.keywords:
                    self.report(
                        node,
                        "unseeded random.Random() seeds itself from the "
                        "OS; pass an explicit seed",
                    )
            elif parts[-1] == "Random" and not node.args and not node.keywords:
                self.report(
                    node,
                    "unseeded Random() seeds itself from the OS; pass an "
                    "explicit seed",
                )
            if parts[-1] in SEEDING_TARGETS:
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if (
                        isinstance(arg, ast.Call)
                        and (call_name(arg) or "") in CLOCK_CALLS
                    ):
                        self.report(
                            arg,
                            f"time-based seed ({call_name(arg)}()) makes "
                            "every run different; derive seeds from the "
                            "chain's own RNG (repro.rng.spawn) or config",
                        )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "random":
            base = dotted_name(node.value)
            if base in ("numpy", "np"):
                self.report(
                    node,
                    f"{base}.random uses numpy's global RNG (and numpy "
                    "is not a dependency); use seeded random.Random",
                )
        self.generic_visit(node)
