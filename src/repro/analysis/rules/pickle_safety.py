"""RL001 — pickle safety for chain factories and template state.

The PR-2 bug class: the multiprocess backend pickles ``(Database,
MarkovChain)`` snapshots into worker processes, so everything a chain
factory or factor template captures must survive ``pickle``.  Lambdas,
functions defined inside another function (closures), and
``functools.partial`` over either do not — they fail at ``run()`` time,
one worker deep, with an opaque ``PicklingError``.  Neither does a
captured module-level mutable registry: it pickles *by value*, so the
worker silently stops observing updates the parent makes.

Flagged, inside ``repro/ie/`` and ``repro/core/``:

* a lambda or local function passed to a factor/template constructor
  (``UnaryTemplate``, ``PairwiseTemplate``, ``LogLinearFactor``,
  ``ConstraintFactor``) — feature functions must be module-level
  functions or bound methods;
* ``self.attr = <lambda | local function | functools.partial over
  either>`` inside a pickle-contract class (name ending in ``Factory``
  or ``Template``, or defining ``__getstate__``/``__reduce__``);
* ``self.attr = <module-level name bound to a dict/list/set literal>``
  inside a pickle-contract class.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.astutil import (
    call_name,
    contains_lambda,
    local_function_names,
    self_attribute,
)
from repro.analysis.framework import Rule, SourceFile

__all__ = ["PickleSafetyRule"]

TEMPLATE_CTORS = {
    "UnaryTemplate",
    "PairwiseTemplate",
    "LogLinearFactor",
    "ConstraintFactor",
}

PICKLE_CONTRACT_METHODS = {"__getstate__", "__reduce__", "__reduce_ex__"}


def _is_pickle_contract_class(node: ast.ClassDef) -> bool:
    if node.name.endswith("Factory") or node.name.endswith("Template"):
        return True
    return any(
        isinstance(stmt, ast.FunctionDef) and stmt.name in PICKLE_CONTRACT_METHODS
        for stmt in node.body
    )


class PickleSafetyRule(Rule):
    rule_id = "RL001"
    title = (
        "chain factories and templates must not capture lambdas, local "
        "functions, or module-level mutable state (multiprocess pickling)"
    )
    scope = ("repro/ie/", "repro/core/")

    def __init__(self, source: SourceFile):
        super().__init__(source)
        self._contract_stack: List[bool] = []
        self._local_defs: List[Set[str]] = []
        self._module_mutables = self._collect_module_mutables(source.tree)

    @staticmethod
    def _collect_module_mutables(tree: ast.Module) -> Set[str]:
        out: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                             ast.ListComp, ast.SetComp)
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
        return out

    # -- stack hooks ----------------------------------------------------
    def check_class(self, node: ast.ClassDef) -> None:
        self._contract_stack.append(_is_pickle_contract_class(node))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        super().visit_ClassDef(node)
        self._contract_stack.pop()

    def check_function(self, node: ast.AST) -> None:
        self._local_defs.append(local_function_names(node))

    def _visit_function(self, node: ast.AST) -> None:
        super()._visit_function(node)
        self._local_defs.pop()

    # -- helpers --------------------------------------------------------
    def _in_contract_class(self) -> bool:
        return bool(self._contract_stack) and self._contract_stack[-1]

    def _is_local_def(self, name: str) -> bool:
        return any(name in defs for defs in self._local_defs)

    def _unpicklable_reason(self, value: ast.AST) -> Optional[str]:
        """Why ``value`` cannot be pickled, or ``None``."""
        if contains_lambda(value) is not None:
            return "a lambda"
        if isinstance(value, ast.Name) and self._is_local_def(value.id):
            return f"local function {value.id!r} (a closure)"
        if isinstance(value, ast.Call):
            name = call_name(value)
            if name is not None and name.split(".")[-1] == "partial":
                for arg in list(value.args) + [k.value for k in value.keywords]:
                    if isinstance(arg, ast.Name) and self._is_local_def(arg.id):
                        return (
                            f"functools.partial over local function {arg.id!r}"
                        )
                # lambdas inside the partial were caught above
        return None

    # -- checks ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None and name.split(".")[-1] in TEMPLATE_CTORS:
            ctor = name.split(".")[-1]
            for arg in list(node.args) + [k.value for k in node.keywords]:
                reason = self._unpicklable_reason(arg)
                if reason is not None:
                    self.report(
                        arg,
                        f"{ctor} argument is {reason}; feature/neighbour "
                        "functions must be module-level functions or bound "
                        "methods so chain snapshots pickle",
                    )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._in_contract_class() and self.func_stack:
            for target in node.targets:
                attr = self_attribute(target)
                if attr is None:
                    continue
                reason = self._unpicklable_reason(node.value)
                if reason is not None:
                    self.report(
                        node,
                        f"pickle-contract class stores {reason} on "
                        f"self.{attr}; use a module-level function or "
                        "bound method",
                    )
                elif (
                    isinstance(node.value, ast.Name)
                    and node.value.id in self._module_mutables
                ):
                    self.report(
                        node,
                        f"pickle-contract class captures module-level "
                        f"mutable {node.value.id!r} on self.{attr}; it "
                        "pickles by value, so workers stop observing "
                        "parent updates — copy it explicitly or pass "
                        "immutable data",
                    )
        self.generic_visit(node)
