"""RL007 — no swallowed failures in the fault-tolerance paths.

The resilience layer's whole contract is that failures are *seen*:
a worker death must reach the supervisor to trigger checkpoint-resume,
a checkpoint-write error must be counted (and the chain kept running),
a poisoned serve worker must be evicted, and the circuit breaker must
be fed every failure or it never opens.  A ``try``/``except`` that
silently eats an exception in these modules converts a recoverable
fault into a hang or a silently-wrong marginal — the exact bug class
this PR's chaos suite exists to catch.

Flagged, inside the retry/supervision/serving-resilience scope:

* **bare ``except:``** — always; it catches ``KeyboardInterrupt`` and
  ``SystemExit`` too, so even a re-raising handler is wrong as written
  (catch ``Exception`` or a typed error instead);
* **``except Exception``/``except BaseException`` with a do-nothing
  body** — only ``pass``/``continue``/``...``/docstring statements:
  the handler observes the broadest failure class and drops it on the
  floor.  Handlers that re-raise, return a fallback, log/count the
  failure, or catch a *typed* exception are all fine — the rule bans
  silent blanket swallowing, not recovery.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Rule

__all__ = ["ResilienceDisciplineRule"]

BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _exception_names(handler: ast.ExceptHandler) -> set:
    """The exception class names a handler catches (empty for bare)."""
    node = handler.type
    if node is None:
        return set()
    items = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for item in items:
        if isinstance(item, ast.Name):
            names.add(item.id)
        elif isinstance(item, ast.Attribute):
            names.add(item.attr)
    return names


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue)):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return True  # docstring or bare `...`
    return False


class ResilienceDisciplineRule(Rule):
    rule_id = "RL007"
    title = (
        "no bare except and no silently-swallowed broad exceptions in "
        "retry/supervision/serving-resilience paths"
    )
    scope = (
        "repro/resilience/",
        "repro/core/backends.py",
        "repro/serve/pool.py",
        "repro/serve/server.py",
    )

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            if handler.type is None:
                self.report(
                    handler,
                    "bare except in a fault-tolerance path catches "
                    "KeyboardInterrupt/SystemExit and hides the failure "
                    "from the supervisor; catch a typed error (or "
                    "Exception) and surface it",
                )
                continue
            caught = _exception_names(handler)
            if caught & BROAD_EXCEPTIONS and all(
                _is_noop(stmt) for stmt in handler.body
            ):
                broad = ", ".join(sorted(caught & BROAD_EXCEPTIONS))
                self.report(
                    handler,
                    f"except {broad} with a do-nothing body swallows the "
                    "failure the resilience layer exists to observe; "
                    "re-raise, count it, or serve a typed fallback",
                )
        self.generic_visit(node)
