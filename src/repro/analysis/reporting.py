"""Reporters and the baseline file for repro-lint.

Text output is one ``path:line: RULE message [symbol]`` per finding —
the format editors and CI log scrapers already understand.  JSON output
is a stable machine-readable document (``version`` guards the schema)
that the CI ``lint`` job archives.

A *baseline* is a JSON list of finding fingerprints (line-number-free,
see :meth:`repro.analysis.framework.Finding.fingerprint`) that are
accepted as pre-existing debt: baselined findings are reported in the
summary but do not fail the run.  The committed tree's baseline is
empty — every finding was either fixed or suppressed inline with a
justification — but the mechanism is what lets a *new* rule land
before its last fix does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.analysis.framework import AnalysisReport, Finding

__all__ = [
    "render_text",
    "render_json",
    "load_baseline",
    "write_baseline",
]

JSON_SCHEMA_VERSION = 1


def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    lines: List[str] = []
    for finding in report.findings:
        where = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule} "
            f"{finding.message}{where}"
        )
    counts = report.counts_by_rule()
    summary = (
        f"repro-lint: {len(report.findings)} finding(s) in "
        f"{report.files} file(s)"
    )
    if counts:
        summary += (
            " ("
            + ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
            + ")"
        )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if report.baselined:
        summary += f", {report.baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    document = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "symbol": f.symbol,
                "fingerprint": f.fingerprint(),
            }
            for f in report.findings
        ],
        "summary": {
            "files": report.files,
            "findings": len(report.findings),
            "by_rule": report.counts_by_rule(),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "rules_run": list(report.rules_run),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def load_baseline(path: Path) -> List[str]:
    """Fingerprints from a baseline file; missing file = empty."""
    if not path.exists():
        return []
    raw = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(raw, dict):
        raw = raw.get("fingerprints", [])
    return [str(fp) for fp in raw]


def write_baseline(path: Path, findings: List[Finding]) -> None:
    fingerprints = sorted({f.fingerprint() for f in findings})
    path.write_text(
        json.dumps({"fingerprints": fingerprints}, indent=2) + "\n",
        encoding="utf-8",
    )
