"""Any-time evaluation traces: loss as a function of wall-clock time.

The paper's Figs. 4b and 6 plot (normalized) squared error against
time, demonstrating the any-time property: applications can stop early
for coarse estimates or keep sampling for fidelity.  A
:class:`LossTrace` is the ``on_sample`` hook that produces such plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.marginals import MarginalEstimator
from repro.core.metrics import normalize_series, squared_error, time_to_fraction

__all__ = ["LossTrace"]

Marginals = Dict[tuple, float]


class LossTrace:
    """Records ``(elapsed, loss)`` per sample against reference truths.

    Pass :meth:`hook` as the ``on_sample`` argument of
    :meth:`repro.core.evaluator.QueryEvaluator.run`.
    """

    def __init__(self, truths: Sequence[Marginals]):
        self.truths = list(truths)
        self._points: List[List[Tuple[float, float]]] = [[] for _ in self.truths]

    def hook(
        self, index: int, elapsed: float, estimators: List[MarginalEstimator]
    ) -> None:
        for i, (truth, estimator) in enumerate(zip(self.truths, estimators)):
            loss = squared_error(estimator.probabilities(), truth)
            self._points[i].append((elapsed, loss))

    # ------------------------------------------------------------------
    def trace(self, query_index: int = 0) -> List[Tuple[float, float]]:
        """The raw ``(elapsed_seconds, loss)`` series for one query."""
        return list(self._points[query_index])

    def normalized_trace(self, query_index: int = 0) -> List[Tuple[float, float]]:
        """Loss scaled so the series' maximum is 1 (paper §5.2)."""
        points = self._points[query_index]
        losses = normalize_series([loss for _, loss in points])
        return [(elapsed, loss) for (elapsed, _), loss in zip(points, losses)]

    def time_to_fraction(self, fraction: float, query_index: int = 0) -> float:
        """Earliest elapsed time at which the loss fell to ``fraction``
        of its initial value (0.5 = the paper's Fig. 4a metric)."""
        return time_to_fraction(self._points[query_index], fraction)

    def final_loss(self, query_index: int = 0) -> float:
        return self._points[query_index][-1][1]
