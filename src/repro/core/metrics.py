"""Loss metrics for evaluating sampler accuracy.

The paper measures *squared-error loss to the ground-truth query
answer* ("the usual element-wise squared loss", §5.2), sometimes
normalized so the largest point on a plot is 1, and summarizes
scalability by the *time taken to halve* the loss of the initial
single-sample approximation (§5.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import EvaluationError

__all__ = [
    "squared_error",
    "normalize_series",
    "time_to_fraction",
    "time_to_half",
]

Row = Tuple[Any, ...]
Marginals = Dict[Row, float]


def squared_error(estimate: Marginals, truth: Marginals) -> float:
    """Element-wise squared loss over the union of answer tuples.

    Tuples absent from one side count as probability 0 there, so both
    false positives and false negatives are penalized.
    """
    loss = 0.0
    for row in estimate.keys() | truth.keys():
        diff = estimate.get(row, 0.0) - truth.get(row, 0.0)
        loss += diff * diff
    return loss


def normalize_series(losses: Sequence[float]) -> List[float]:
    """Scale a loss trace so its maximum is 1 (paper §5.2)."""
    peak = max(losses, default=0.0)
    if peak <= 0.0:
        return [0.0 for _ in losses]
    return [value / peak for value in losses]


def time_to_fraction(
    trace: Sequence[Tuple[float, float]], fraction: float
) -> float:
    """Earliest time at which the loss drops to ``fraction`` of the
    trace's initial loss.

    ``trace`` is a sequence of ``(elapsed_seconds, loss)`` points in
    time order, starting from the single-sample approximation.  Raises
    if the trace never reaches the target (the caller should then run
    more samples).
    """
    if not trace:
        raise EvaluationError("empty loss trace")
    if not 0.0 < fraction <= 1.0:
        raise EvaluationError("fraction must be in (0, 1]")
    initial = trace[0][1]
    if initial == 0.0:
        return trace[0][0]
    target = initial * fraction
    for elapsed, loss in trace:
        if loss <= target:
            return elapsed
    raise EvaluationError(
        f"loss never reached {fraction:.0%} of its initial value "
        f"(initial {initial:.4g}, final {trace[-1][1]:.4g}); run more samples"
    )


def time_to_half(trace: Sequence[Tuple[float, float]]) -> float:
    """The paper's Fig. 4a metric: time to halve the squared error of
    the initial deterministic approximation."""
    return time_to_fraction(trace, 0.5)
