"""Basic MH query evaluation — the paper's Algorithm 3.

After every ``k`` Metropolis-Hastings walk-steps the *full* query is
re-executed over the current world, and tuple counts are collected.
Correct but expensive: the per-sample cost is the cost of a complete
query execution, which for non-selective queries scales with the
database (the paper projects 227 hours for 10M tuples, §5.3).
"""

from __future__ import annotations

from typing import List

from repro.db.multiset import Multiset
from repro.db.ra.eval import evaluate
from repro.core.evaluator import QueryEvaluator

__all__ = ["NaiveEvaluator"]


class NaiveEvaluator(QueryEvaluator):
    """Re-runs every query from scratch on each sampled world."""

    def _answers(self) -> List[Multiset]:
        return [evaluate(plan, self.db) for plan in self.plans]
