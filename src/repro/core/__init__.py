"""MCMC query evaluation — the paper's primary contribution.

Estimate ``Pr[t ∈ Q(W)]`` for every tuple in a query's answer by
sampling possible worlds with Metropolis-Hastings and counting answer
membership (Eq. 5):

* :class:`NaiveEvaluator` — Algorithm 3: full query per sample;
* :class:`MaterializedEvaluator` — Algorithm 1: one full query, then
  incremental view maintenance per sample;
* :class:`ParallelEvaluator` — §5.4: pooled independent chains;
* :class:`ShardedEvaluator` — §5.4's data-parallel axis: one factor
  graph + chain per database shard, union-merged marginals;
* :class:`MarginalEstimator`, :class:`LossTrace`, metrics — the
  measurement apparatus of §5.
"""

from repro.core.anytime import LossTrace
from repro.core.backends import (
    BACKENDS,
    ChainBackend,
    ProcessPoolBackend,
    SequentialBackend,
    make_backend,
)
from repro.core.evaluator import EvaluationResult, QueryEvaluator
from repro.core.ground_truth import estimate_ground_truth
from repro.core.live import (
    IncrementalEvaluator,
    LiveRunner,
    graph_signature,
    resolve_live_model,
    supports_live_repair,
)
from repro.core.marginals import MarginalEstimator
from repro.core.materialized import MaterializedEvaluator
from repro.core.metrics import (
    normalize_series,
    squared_error,
    time_to_fraction,
    time_to_half,
)
from repro.core.naive import NaiveEvaluator
from repro.core.parallel import ChainFactory, ParallelEvaluator
from repro.core.sharded import (
    ShardChainFactory,
    ShardedEvaluator,
    merge_shard_estimators,
    validate_shardable_graph,
)

__all__ = [
    "BACKENDS",
    "ChainBackend",
    "ChainFactory",
    "EvaluationResult",
    "ProcessPoolBackend",
    "SequentialBackend",
    "make_backend",
    "IncrementalEvaluator",
    "LiveRunner",
    "LossTrace",
    "MarginalEstimator",
    "MaterializedEvaluator",
    "NaiveEvaluator",
    "graph_signature",
    "resolve_live_model",
    "supports_live_repair",
    "ParallelEvaluator",
    "QueryEvaluator",
    "ShardChainFactory",
    "ShardedEvaluator",
    "estimate_ground_truth",
    "merge_shard_estimators",
    "validate_shardable_graph",
    "normalize_series",
    "squared_error",
    "time_to_fraction",
    "time_to_half",
]
