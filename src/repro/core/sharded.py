"""Sharded (data-parallel) query evaluation.

The paper's Fig. 5 scales along two axes: *chain* parallelism (§5.4 —
identical copies of the whole database, one chain each) and *data*
parallelism — partition the database itself so each worker samples an
independent sub-model.  PR 2 built the first axis; this module builds
the second on top of the same chain backends:

1. a :class:`~repro.db.shard.ShardedDatabase` slices the world into K
   self-contained sub-databases along the workload's declared shard key
   (NER ``TOKEN.DOC_ID``, coref mention blocks);
2. a *shard chain factory* — ``factory(shard_db, seed) -> MarkovChain``
   — builds one factor graph + chain per shard, so each shard is a
   complete probabilistic database of its own;
3. every (shard, chain) pair becomes one unit of the existing
   :class:`~repro.core.backends.SequentialBackend` /
   :class:`~repro.core.backends.ProcessPoolBackend`, so ``shards=K``
   composes with ``chains=M`` into K×M workers;
4. per-shard estimates are pooled *within* a shard (cross-chain
   averaging, as before) and union-merged *across* shards into the
   global answer.

Soundness rests on the shards being probabilistically independent:
:func:`validate_shardable_graph` checks that no instantiated factor
spans two shards (a skip-chain edge crossing a document split, say) and
raises :class:`~repro.errors.ShardingError` otherwise — sampling a
sub-model that ignores a cross-shard factor would silently change the
distribution.

Cross-shard merge semantics: shards are independent sub-models, so for
a query whose answer distributes over the shard partition (selections,
projections, joins within a shard), ``Pr[t ∈ Q(W)] = 1 - Π_k (1 -
Pr[t ∈ Q(W_k)])`` exactly.  A tuple witnessed by a single shard keeps
its exact empirical count (the common, disjoint-support case — and the
reason ``shards=1`` is bit-identical to unsharded evaluation); tuples
witnessed by several shards get the product combine.  Queries that do
*not* distribute — global aggregates — are rejected up front; grouped
aggregates are accepted but the group keys must functionally determine
the shard (e.g. ``GROUP BY DOC_ID`` under document sharding), which the
engine cannot check and the caller must guarantee.

The same caller obligation holds for **joins**: each shard evaluates
the query over its own rows only, so join pairs whose matching rows
live in different shards are never produced (they get probability 0).
This is exactly right when the partitioner co-locates whatever can
join — the NER self-joins are per-document under DOC_ID sharding — and
silently wrong otherwise.  The engine cannot tell these cases apart
from the plan (rejecting joins on non-shard-key columns would outlaw
the coref pair query, whose soundness comes from the *partitioner*,
not the schema), so: shard with a partitioner that co-locates your
join keys, or run unsharded.

Coref block sharding is the standard **blocking approximation** of
entity resolution, not an exact decomposition: the affinity template
scores *any* same-cluster pair, so the unsharded posterior puts (small)
mass on cross-surname co-clustering that block partitioning forces to
exactly zero.  NER document sharding, by contrast, is exact — every
template is within-document by construction.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.db.database import Database, Snapshot
from repro.db.ra.ast import GroupAggregate, PlanNode
from repro.db.shard import Partitioner, HashPartitioner, ShardSpec, ShardedDatabase
from repro.db.sql.compiler import plan_query
from repro.db.view import strip_presentation
from repro.errors import EvaluationError, ShardingError
from repro.mcmc.chain import MarkovChain
from repro.core.backends import (
    ChainBackend,
    make_backend,
    pool_estimators,
    validate_backend_name,
)
from repro.core.evaluator import EvaluationResult, QueryEvaluator
from repro.core.marginals import MarginalEstimator
from repro.core.materialized import MaterializedEvaluator
from repro.resilience import ResilienceConfig
from repro.rng import make_rng, spawn

__all__ = [
    "ShardChainFactory",
    "ShardedEvaluator",
    "derive_unit_seeds",
    "merge_shard_estimators",
    "validate_shardable_graph",
]

# Builds one shard's sampler over that shard's (already sliced) world:
# ``factory(shard_db, seed) -> MarkovChain``.  Must be picklable for the
# process backend, and may carry a ``spec`` attribute (a ShardSpec)
# declaring the workload's natural shard key.
ShardChainFactory = Callable[[Database, int], MarkovChain]


def derive_unit_seeds(base_seed: int, count: int) -> List[int]:
    """Decorrelated chain seeds for ``count`` (shard, chain) units —
    the same spawn discipline as
    :class:`repro.ie.ner.pdb.SeededChainFactory`, so a sharded run is a
    pure function of ``(data, base_seed)``."""
    root = make_rng(base_seed)
    return [spawn(root, index).randrange(2**31) for index in range(count)]


def validate_shardable_graph(graph, sharded: ShardedDatabase) -> None:
    """Raise :class:`ShardingError` if any factor of ``graph`` touches
    variables in two different shards.

    Variables bound to database fields (``FieldVariable``: attributes
    ``table``/``pk``) are mapped through the shard key; free or observed
    variables don't constrain the split.  For models with *dynamic*
    templates only the factors instantiated under the current
    assignment can be checked — co-partition such models by
    construction (e.g. coref mention blocks) rather than relying on
    this check alone.
    """
    for factor in graph.all_factors().values():
        shards = set()
        for variable in factor.variables:
            table = getattr(variable, "table", None)
            pk = getattr(variable, "pk", None)
            if table is None or pk is None or not sharded.is_sharded(table):
                continue
            shards.add(sharded.shard_of_key(table, pk))
        if len(shards) > 1:
            names = [repr(v.name) for v in factor.variables]
            raise ShardingError(
                f"factor template {factor.template_name!r} spans shards "
                f"{sorted(shards)} (variables {', '.join(names)}); "
                f"choose a shard key that co-partitions the template "
                f"(e.g. DOC_ID for skip-chain NER) or fewer shards"
            )


def _reject_non_distributive(plan: PlanNode) -> None:
    """Global aggregates collapse all shards into one row — their
    marginals cannot be reassembled from per-shard answers."""
    if isinstance(plan, GroupAggregate) and not plan.group_by:
        raise ShardingError(
            "global aggregates do not distribute over shards; "
            "aggregate per shard key (e.g. GROUP BY DOC_ID) or run "
            "unsharded"
        )
    for child in plan.children():
        _reject_non_distributive(child)


def merge_shard_estimators(
    per_shard: Sequence[Sequence[MarginalEstimator]],
) -> List[MarginalEstimator]:
    """Union-merge per-shard estimators (one list per shard, one
    estimator per query) into global estimators.

    All shards must have recorded the same number of samples (sample
    ``s`` of the global world is the product of sample ``s`` of every
    shard).  Tuples witnessed by one shard keep exact integer counts;
    tuples witnessed by several get the independent-union combine
    ``z * (1 - Π_k (1 - m_k/z))``.
    """
    if not per_shard:
        raise ShardingError("no shard results to merge")
    if len(per_shard) == 1:
        return [estimator.copy() for estimator in per_shard[0]]
    merged: List[MarginalEstimator] = []
    for query_index in range(len(per_shard[0])):
        estimators = [shard[query_index] for shard in per_shard]
        z = estimators[0].num_samples
        for estimator in estimators[1:]:
            if estimator.num_samples != z:
                raise ShardingError(
                    f"shards disagree on sample count "
                    f"({estimator.num_samples} != {z}); every shard must "
                    f"record the same number of thinned samples"
                )
        if z == 0:
            merged.append(MarginalEstimator())
            continue
        witness_counts: Dict[Tuple, List[int]] = {}
        for estimator in estimators:
            for row, count in estimator.counts().items():
                witness_counts.setdefault(row, []).append(count)
        combined: Dict[Tuple, Any] = {}
        for row, counts in witness_counts.items():
            if len(counts) == 1:
                combined[row] = counts[0]
            else:
                miss = 1.0
                for count in counts:
                    miss *= 1.0 - count / z
                combined[row] = z * (1.0 - miss)
        merged.append(MarginalEstimator.from_counts(combined, z))
    return merged


class _ShardUnitFactory:
    """The :data:`~repro.core.backends.ChainFactory` over (shard, chain)
    units: unit ``u = slot * chains + c`` clones non-empty shard
    ``slot``'s initial world and builds chain ``c`` over it.  A class
    (not a closure) so it and its products cross process boundaries."""

    def __init__(
        self,
        snapshots: Sequence[Snapshot],
        shard_factory: ShardChainFactory,
        chains: int,
        seeds: Sequence[int],
        name_prefix: str,
    ):
        self.snapshots = list(snapshots)
        self.shard_factory = shard_factory
        self.chains = chains
        self.seeds = list(seeds)
        self.name_prefix = name_prefix

    def __call__(self, unit: int) -> Tuple[Database, MarkovChain]:
        slot, chain_index = divmod(unit, self.chains)
        db = Database.from_snapshot(
            self.snapshots[slot], f"{self.name_prefix}-s{slot}c{chain_index}"
        )
        return db, self.shard_factory(db, self.seeds[unit])


class ShardedEvaluator:
    """Data-parallel marginal estimation over K database shards.

    Stateful like the chain backends: construction splits the database,
    validates shardability, and starts one (shard, chain) unit per
    worker slot; every :meth:`run` call advances *all* units and
    returns freshly merged global estimates, so repeated calls continue
    the same chains (anytime refinement).  :meth:`close` releases the
    workers.

    Parameters
    ----------
    database:
        The full (unsharded) database; read, never mutated.
    shard_factory:
        ``factory(shard_db, seed) -> MarkovChain`` building one shard's
        model + sampler (see :data:`ShardChainFactory`).
    queries:
        SQL strings or compiled plans, evaluated per shard.
    num_shards:
        K.  Shards whose shard table received no rows are skipped (K
        may exceed the number of distinct shard keys).
    spec:
        The shard key; defaults to ``shard_factory.spec``.
    partitioner:
        Defaults to :class:`~repro.db.shard.HashPartitioner`.
    chains:
        Independent chains per shard (K×M units in total).
    backend:
        ``"sequential"`` or ``"process"`` — where units execute.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig` handed to
        the backend: unit workers checkpoint their chains and are
        respawned (with retry/backoff) after a crash or wedge.
    validate_graph:
        A :class:`~repro.fg.graph.FactorGraph` over the *full* database
        to check for cross-shard factors (skipped when ``None`` or when
        K == 1, where no factor can cross anything).
    """

    def __init__(
        self,
        database: Database,
        shard_factory: ShardChainFactory,
        queries: Sequence[str | PlanNode],
        num_shards: int,
        *,
        spec: Optional[ShardSpec] = None,
        partitioner: Optional[Partitioner] = None,
        chains: int = 1,
        backend: str = "sequential",
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
        base_seed: int = 0,
        validate_graph=None,
        replicate: Sequence[str] = (),
        resilience: Optional[ResilienceConfig] = None,
    ):
        if num_shards < 1:
            raise ShardingError(f"need at least one shard, got {num_shards}")
        if chains < 1:
            raise EvaluationError("need at least one chain per shard")
        if not queries:
            raise EvaluationError("need at least one query")
        validate_backend_name(backend)
        spec = spec if spec is not None else getattr(shard_factory, "spec", None)
        if spec is None:
            raise ShardingError(
                "no shard key: pass spec=ShardSpec(table, column) or use a "
                "shard factory that declares one (task.shard_chain_factory())"
            )
        if partitioner is None:
            # A workload whose keys must co-partition (coref mention
            # blocks) supplies its own default split; plain hash
            # partitioning is only the fallback.
            hook = getattr(shard_factory, "partitioner_for", None)
            partitioner = (
                hook(database, num_shards)
                if hook is not None
                else HashPartitioner(num_shards)
            )
        if partitioner.num_shards != num_shards:
            raise ShardingError(
                f"partitioner covers {partitioner.num_shards} shards but "
                f"num_shards={num_shards}"
            )
        self.spec = spec
        self.num_shards = num_shards
        self.chains = chains
        self.sharded = ShardedDatabase(
            database, spec, partitioner, replicate=replicate
        )
        if num_shards > 1:
            for query in queries:
                plan = (
                    query
                    if isinstance(query, PlanNode)
                    else plan_query(database, query)
                )
                _reject_non_distributive(strip_presentation(plan))
            if validate_graph is not None:
                validate_shardable_graph(validate_graph, self.sharded)

        shard_dbs = self.sharded.split()
        occupied = [
            (index, db)
            for index, db in enumerate(shard_dbs)
            if len(db.table(spec.table)) > 0
        ]
        if not occupied:
            raise ShardingError(
                f"every shard is empty: table {spec.table!r} has no rows"
            )
        # Original shard index per occupied slot (slots are what run).
        self.shard_indexes: List[int] = [index for index, _ in occupied]
        self.empty_shards: List[int] = [
            index
            for index in range(num_shards)
            if index not in set(self.shard_indexes)
        ]
        num_units = len(occupied) * chains
        self.unit_seeds = derive_unit_seeds(base_seed, num_units)
        factory = _ShardUnitFactory(
            [db.snapshot() for _, db in occupied],
            shard_factory,
            chains,
            self.unit_seeds,
            database.name,
        )
        self.backend: ChainBackend = make_backend(backend, resilience=resilience)
        try:
            self.backend.start(factory, num_units, list(queries), evaluator_cls)
        except BaseException:
            # start() already closes its own partial worker set; close
            # again defensively so no unit outlives a failed build.
            self.backend.close()
            raise
        # Per-occupied-shard pooled results of the most recent run().
        self.shard_results: List[EvaluationResult] = []

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self.backend.closed

    def worker_pids(self) -> List[int]:
        """PIDs of live unit workers (process backend only)."""
        pids = getattr(self.backend, "worker_pids", None)
        return pids() if pids is not None else []

    # ------------------------------------------------------------------
    def run(
        self,
        samples_per_chain: int,
        burn_in: int = 0,
        include_initial: bool = True,
    ) -> EvaluationResult:
        """Advance every (shard, chain) unit ``samples_per_chain``
        thinned samples and return the merged global estimate.

        Estimators are cumulative across calls (anytime refinement);
        the merge is recomputed from the latest per-unit state."""
        started = time.perf_counter()
        backend_result = self.backend.run(
            samples_per_chain, burn_in=burn_in, include_initial=include_initial
        )
        per_shard: List[List[MarginalEstimator]] = []
        self.shard_results = []
        for slot in range(len(self.shard_indexes)):
            units = self.backend.chain_results[
                slot * self.chains : (slot + 1) * self.chains
            ]
            pooled = pool_estimators([unit.estimators for unit in units])
            shard_cpu = sum(unit.cpu_elapsed for unit in units)
            per_shard.append(pooled)
            self.shard_results.append(
                EvaluationResult(pooled, shard_cpu, shard_cpu)
            )
        merged = merge_shard_estimators(per_shard)
        wall = time.perf_counter() - started
        return EvaluationResult(merged, wall, backend_result.cpu_elapsed)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "ShardedEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
