"""The common frame of both query evaluators.

An evaluator owns a database (one possible world), a Markov chain that
mutates it, and one or more compiled queries.  Subclasses differ only
in **how the answer of each query is obtained per sample**:

* :class:`~repro.core.naive.NaiveEvaluator` re-executes the full query
  (Algorithm 3);
* :class:`~repro.core.materialized.MaterializedEvaluator` folds the
  world delta into materialized views (Algorithm 1).

Both see identical sample sequences when given identical seeds, which
is how the paper compares them (§5.3: "the two approaches generate the
same set of samples").
"""

from __future__ import annotations

import time
from typing import Callable, List, Sequence

from repro.db.database import Database
from repro.db.multiset import Multiset
from repro.db.ra.ast import PlanNode
from repro.db.ra.planner import PlannedQuery
from repro.db.sql.compiler import plan_query
from repro.db.view import strip_presentation
from repro.errors import EvaluationError
from repro.mcmc.chain import MarkovChain
from repro.core.marginals import MarginalEstimator

__all__ = ["QueryEvaluator", "EvaluationResult"]

SampleHook = Callable[[int, float, List[MarginalEstimator]], None]


class EvaluationResult:
    """Marginal estimates for each evaluated query.

    Two separate clocks are reported:

    * ``wall_elapsed`` — real time between the start and the end of the
      evaluation, as observed by the caller;
    * ``cpu_elapsed`` — total compute time: the *sum* of every chain's
      own measured run time (the parallel backends measure per-chain
      CPU seconds, so waiting for a contended core does not count).

    For a single chain the two coincide.  For parallel evaluation they
    diverge: the sequential backend has ``wall ≈ cpu`` (chains run one
    after another), while the process backend aims for
    ``wall ≈ cpu / num_chains``.  The legacy :attr:`elapsed` attribute
    aliases ``wall_elapsed``.
    """

    def __init__(
        self,
        estimators: List[MarginalEstimator],
        wall_elapsed: float,
        cpu_elapsed: float | None = None,
    ):
        self.estimators = estimators
        self.wall_elapsed = wall_elapsed
        self.cpu_elapsed = wall_elapsed if cpu_elapsed is None else cpu_elapsed

    @property
    def elapsed(self) -> float:
        """Backward-compatible alias for :attr:`wall_elapsed`."""
        return self.wall_elapsed

    def __getitem__(self, index: int) -> MarginalEstimator:
        return self.estimators[index]

    def __len__(self) -> int:
        return len(self.estimators)

    @property
    def marginals(self) -> MarginalEstimator:
        """The first (often only) query's estimator."""
        return self.estimators[0]


class QueryEvaluator:
    """Base class wiring a chain to a set of queries."""

    def __init__(
        self,
        db: Database,
        chain: MarkovChain,
        queries: Sequence[str | PlanNode | PlannedQuery],
    ):
        if not queries:
            raise EvaluationError("need at least one query")
        self.db = db
        self.chain = chain
        self.plans: List[PlanNode] = [
            strip_presentation(self._as_plan(q)) for q in queries
        ]
        self.estimators: List[MarginalEstimator] = [
            MarginalEstimator() for _ in self.plans
        ]

    def _as_plan(self, query: str | PlanNode | PlannedQuery) -> PlanNode:
        """Resolve one ``queries`` element to a plan tree: SQL text is
        compiled, a :class:`PlannedQuery` contributes its optimized
        plan, a bare tree is used as-is."""
        if isinstance(query, PlannedQuery):
            return query.plan
        if isinstance(query, PlanNode):
            return query
        return plan_query(self.db, query)

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        """Called once before sampling starts."""

    def _answers(self) -> List[Multiset]:
        """Current answers of all queries for the present world."""
        raise NotImplementedError

    def notify_repair(self, repair) -> None:
        """Re-pool after a live graph repair (:mod:`repro.core.live`):
        the posterior changed, so recorded samples no longer estimate
        it.  Resets every estimator in place — anytime cursors holding
        them observe the reset.  Subclasses with additional per-update
        state extend this."""
        for estimator in self.estimators:
            estimator.reset()

    # ------------------------------------------------------------------
    def run(
        self,
        num_samples: int,
        on_sample: SampleHook | None = None,
        include_initial_sample: bool = True,
        burn_in: int = 0,
    ) -> EvaluationResult:
        """Estimate marginals from ``num_samples`` thinned samples.

        ``include_initial_sample`` counts the initial world's answer as
        the first sample (the "single-sample deterministic
        approximation" the paper measures loss against); the chain then
        contributes ``num_samples`` further samples.  ``burn_in``
        discards that many thinned samples *before* recording starts —
        the chain advances but no counts (and no query work) happen.
        ``on_sample`` is invoked after every recorded sample with
        ``(sample_index, elapsed_seconds, estimators)`` — the any-time
        hook used for loss-over-time traces.
        """
        for _ in range(burn_in):
            self.chain.advance()
        started = time.perf_counter()
        self._prepare()
        index = 0
        if include_initial_sample:
            self._record_all()
            if on_sample is not None:
                on_sample(index, time.perf_counter() - started, self.estimators)
            index += 1
        for _ in range(num_samples):
            self.chain.advance()
            self._record_all()
            if on_sample is not None:
                on_sample(index, time.perf_counter() - started, self.estimators)
            index += 1
        return EvaluationResult(self.estimators, time.perf_counter() - started)

    def _record_all(self) -> None:
        for estimator, answer in zip(self.estimators, self._answers()):
            estimator.record(answer)
