"""Marginal probability estimation from sampled query answers.

The evaluation problem (paper §4, Eq. 4/5): return every tuple that
appears in the answer of ``Q`` over some possible world, together with
``Pr[t ∈ Q(W)]``, estimated as the fraction of sampled worlds whose
answer contains ``t``.

:class:`MarginalEstimator` implements the count vector ``m`` and
normalizer ``z`` of Algorithms 1 and 3; a tuple is counted once per
sample when its multiset count is positive (``count(m_i) > 0`` — the
multiset-semantics condition of §4.2's Remark).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.db.multiset import Multiset
from repro.errors import EvaluationError

__all__ = ["MarginalEstimator"]

Row = Tuple[Any, ...]


class MarginalEstimator:
    """Empirical tuple marginals over thinned MCMC samples."""

    def __init__(self) -> None:
        self._counts: Dict[Row, int] = {}
        self._samples = 0

    # ------------------------------------------------------------------
    def record(self, answer: Multiset) -> None:
        """Count one sampled world's answer (lines 5-7 of Algorithm 1 /
        Algorithm 3: ``m_i += 1`` for tuples in the answer, ``z += 1``)."""
        counts = self._counts
        for row in answer.support():
            counts[row] = counts.get(row, 0) + 1
        self._samples += 1

    def merge(self, other: "MarginalEstimator") -> None:
        """Pool counts from an independent chain (parallelization §5.4)."""
        for row, count in other._counts.items():
            self._counts[row] = self._counts.get(row, 0) + count
        self._samples += other._samples

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return self._samples

    def probability(self, row: Row) -> float:
        """``Pr[row ∈ Q(W)]`` under the empirical distribution."""
        if self._samples == 0:
            raise EvaluationError("no samples recorded yet")
        return self._counts.get(row, 0) / self._samples

    def probabilities(self) -> Dict[Row, float]:
        """All rows ever seen with their probabilities (``(1/z) m``)."""
        if self._samples == 0:
            raise EvaluationError("no samples recorded yet")
        z = self._samples
        return {row: count / z for row, count in self._counts.items()}

    def support(self) -> Iterator[Row]:
        """Rows with nonzero estimated probability."""
        return iter(self._counts)

    def top(self, n: int) -> List[Tuple[Row, float]]:
        """The ``n`` most probable rows, ties broken by row order."""
        ranked = sorted(
            self.probabilities().items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:n]

    def deterministic_rows(self) -> List[Row]:
        """Rows in *every* sampled answer (probability 1, §4 Eq. 4)."""
        return [r for r, c in self._counts.items() if c == self._samples]

    def expected_value(self, position: int = 0) -> float:
        """Mean of a numeric answer column weighted by probability.

        For single-row-per-world aggregate answers (the paper's Query
        2) this is the posterior mean of the aggregate.
        """
        if self._samples == 0:
            raise EvaluationError("no samples recorded yet")
        total = 0.0
        for row, count in self._counts.items():
            value = row[position]
            if not isinstance(value, (int, float)):
                raise EvaluationError(f"column {position} is not numeric: {value!r}")
            total += value * count
        return total / self._samples

    def as_histogram(self, position: int = 0) -> Dict[Any, float]:
        """Probability mass per distinct value of one answer column —
        the paper's Fig. 7 (distribution of the Query 2 count)."""
        if self._samples == 0:
            raise EvaluationError("no samples recorded yet")
        out: Dict[Any, float] = {}
        for row, count in self._counts.items():
            key = row[position]
            out[key] = out.get(key, 0.0) + count / self._samples
        return out

    def counts(self) -> Dict[Row, int]:
        """A copy of the raw per-tuple sample counts (``m`` of
        Algorithm 1) — the merge input for sharded evaluation."""
        return dict(self._counts)

    @classmethod
    def from_counts(
        cls, counts: Dict[Row, Any], samples: int
    ) -> "MarginalEstimator":
        """Rebuild an estimator from explicit counts and normalizer.

        Used by the sharded merge, whose cross-shard union combine can
        produce fractional effective counts (``z * (1 - Π(1 - p_k))``).
        """
        if samples < 0:
            raise EvaluationError("sample count must be non-negative")
        out = cls()
        out._counts = dict(counts)
        out._samples = samples
        return out

    def reset(self) -> None:
        """Forget every recorded sample, in place.

        Live updates re-pool estimators after a graph repair: the
        posterior changed, so pre-update samples no longer estimate it.
        In-place (rather than swapping in a fresh object) so anytime
        cursors already holding this estimator observe the reset."""
        self._counts.clear()
        self._samples = 0

    def copy(self) -> "MarginalEstimator":
        out = MarginalEstimator()
        out._counts = dict(self._counts)
        out._samples = self._samples
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MarginalEstimator({len(self._counts)} rows, z={self._samples})"
