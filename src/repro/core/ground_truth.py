"""Ground-truth marginal estimation.

The true tuple marginals of the skip-chain CRF are intractable, so the
paper *estimates* ground truth by running the sampler itself far longer
than the evaluation runs (§5.2: 100M proposals, thinned), or by
averaging several parallel chains (§5.4).  This module packages that
protocol so every benchmark computes its reference the same way.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.parallel import ChainFactory, ParallelEvaluator

__all__ = ["estimate_ground_truth"]


def estimate_ground_truth(
    factory: ChainFactory,
    queries: Sequence[str],
    num_chains: int,
    samples_per_chain: int,
    burn_in: int = 0,
) -> List[Dict[tuple, float]]:
    """Reference marginals per query, from pooled long parallel chains.

    Chain seeds come from the factory; callers should derive them from
    a *different* base seed than the evaluation runs so the reference
    is independent of the measured runs.  ``burn_in`` thinned samples
    are discarded per chain before counting (references should not
    include the initial transient away from the all-'O' world).
    """
    evaluator = ParallelEvaluator(factory, queries, num_chains)
    result = evaluator.run(samples_per_chain, burn_in=burn_in)
    return [estimator.probabilities() for estimator in result.estimators]
