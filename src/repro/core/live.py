"""Live incremental inference: DML-driven factor-graph repair.

The paper's central scalability claim is that MCMC makes *updates*
cheap: when the evidence changes, the sampler resumes from the current
possible world instead of re-running inference from scratch.  This
module is that claim operationalized:

* :class:`LiveRunner` subscribes to the DML deltas the session captures
  from the SQL executor, asks the attached model to repair its factor
  graph in place (``model.repair_from_delta(delta) -> GraphRepair``),
  re-syncs the chain's proposer to the repaired variable set, and
  locally re-burns only the fresh/touched variables — **chain state for
  every untouched variable carries over**, which is where the ≥10×
  update speedup over rebuild-and-reburn comes from.
* :class:`IncrementalEvaluator` is the materialized evaluator made
  repair-aware: the DML delta flows through the same recorder the MCMC
  samples use (views fold it in on the next answer), and
  :meth:`~IncrementalEvaluator.notify_repair` re-pools the marginal
  estimators in place — the posterior changed, so pre-update samples no
  longer estimate it, and anytime cursors holding the estimators
  observe the reset.

Composition with the execution backends is *repair-or-invalidate*: the
sequential single-chain path repairs in place; process and sharded
runners hold pickled world copies in other processes, so the session
invalidates them and the next execution rebuilds from the updated
database (see the README's "Live updates" matrix).

A model is live-capable when it exposes ``repair_from_delta`` and
``graph`` (:class:`~repro.ie.ner.model.SkipChainNerModel`,
:class:`~repro.ie.coref.model.CorefModel`); anything else falls back to
invalidation.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.materialized import MaterializedEvaluator
from repro.db.delta import Delta
from repro.errors import LiveUpdateError
from repro.fg.graph import FactorGraph, GraphRepair
from repro.mcmc.chain import MarkovChain
from repro.mcmc.proposal import UniformLabelProposer

__all__ = [
    "IncrementalEvaluator",
    "LiveRunner",
    "graph_signature",
    "resolve_live_model",
    "supports_live_repair",
]


def supports_live_repair(model: Any) -> bool:
    """Whether ``model`` implements the live-repair protocol."""
    return (
        callable(getattr(model, "repair_from_delta", None))
        and getattr(model, "graph", None) is not None
    )


def resolve_live_model(model: Any) -> Optional[Any]:
    """The live-capable model inside ``model``, or ``None``.

    Accepts the model itself or an instance facade wrapping one under
    ``.model`` (e.g. :class:`~repro.ie.ner.pdb.NerInstance`).
    """
    for candidate in (model, getattr(model, "model", None)):
        if candidate is not None and supports_live_repair(candidate):
            return candidate
    return None


def graph_signature(graph: FactorGraph) -> tuple:
    """A comparable fingerprint of a factor graph under its current
    assignment: the ordered variable names, the ordered factor keys of
    the unrolled graph, and the total log-score.

    Two graphs with equal signatures enumerate the same factors in the
    same order and therefore sample identically from identical RNG
    state — the bit-identity contract between a live-repaired graph and
    a from-scratch rebuild (tests and the live-update benchmark assert
    it).  Unrolls the whole graph: intended for validation, not hot
    paths.
    """
    factors = graph.all_factors()
    return (
        tuple(v.name for v in graph.variables),
        tuple(factors.keys()),
        graph.score(),
    )


class IncrementalEvaluator(MaterializedEvaluator):
    """A materialized evaluator that survives live graph repair.

    Between runs, a DML statement lands in the attached delta recorder
    exactly like an MCMC transition, so the materialized views stay
    consistent with no extra machinery.  What does *not* survive an
    update is the sample pool: the inherited
    :meth:`~repro.core.evaluator.QueryEvaluator.notify_repair` resets
    every estimator in place, re-pooling marginals over post-update
    samples only.  The class exists as the named live surface (and the
    hook point for update-aware view strategies); the repair contract
    itself lives on the evaluator base.
    """


class LiveRunner:
    """Applies DML deltas to an attached model + chain, in place.

    Parameters
    ----------
    model:
        A live-capable model (``repair_from_delta`` + ``graph``).
    chain:
        The Markov chain sampling that model's graph (the session's
        attached chain).
    burn_steps_per_variable, min_burn_steps:
        Local re-burn budget: fresh/touched variables get
        ``max(min_burn_steps, burn_steps_per_variable * len(local))``
        targeted MH steps so they equilibrate against their (warm)
        neighbourhood before the next sample is recorded.
    """

    def __init__(
        self,
        model: Any,
        chain: MarkovChain,
        burn_steps_per_variable: int = 25,
        min_burn_steps: int = 50,
    ):
        if not supports_live_repair(model):
            raise LiveUpdateError(
                "live updates need a model exposing repair_from_delta and "
                f"graph; got {type(model).__name__}"
            )
        if getattr(getattr(chain, "kernel", None), "proposer", None) is None:
            raise LiveUpdateError(
                "live updates need a chain whose kernel exposes a "
                "resyncable proposer; kernels with private variable "
                "snapshots (e.g. Gibbs) cannot follow graph repairs — "
                "fall back to invalidation"
            )
        self.model = model
        self.chain = chain
        self.burn_steps_per_variable = burn_steps_per_variable
        self.min_burn_steps = min_burn_steps
        #: Repairs applied over this runner's lifetime (observability).
        self.repairs_applied = 0

    @property
    def kernel(self):
        return self.chain.kernel

    # ------------------------------------------------------------------
    def on_dml(self, delta: Delta) -> GraphRepair:
        """Repair the model from one DML delta.

        Returns the (possibly empty) :class:`GraphRepair`.  Untouched
        variables keep their chain state; fresh and touched variables
        are locally re-burned through the chain's own kernel (accepted
        moves flush to the database, so attached view recorders stay
        consistent).  A delta not touching the model's declared
        ``tables`` short-circuits without invoking the hook.  Raises
        :class:`LiveUpdateError` if the model's hook — or the
        post-repair proposer resync / local burn — fails; the caller
        must then treat the model (and its chain) as stale.
        """
        if not self._delta_is_relevant(delta):
            return GraphRepair()
        try:
            repair = self.model.repair_from_delta(delta)
        except LiveUpdateError:
            raise
        except Exception as exc:
            raise LiveUpdateError(
                f"repair of {type(self.model).__name__} failed: {exc}"
            ) from exc
        if repair.is_empty():
            return repair
        self.repairs_applied += 1
        try:
            self._sync_proposer()
            self._local_burn(repair)
        except Exception as exc:
            # The graph is repaired but the chain machinery is not
            # (e.g. a proposer that cannot represent the new variable
            # set) — the chain must not keep sampling.
            raise LiveUpdateError(
                f"post-repair resync of {type(self.model).__name__} "
                f"failed: {exc}"
            ) from exc
        return repair

    def _delta_is_relevant(self, delta: Delta) -> bool:
        """Whether the delta touches any relation the model reads
        (``model.tables``); models without the declaration are asked
        about every delta."""
        tables = getattr(self.model, "tables", None)
        if not tables:
            return True
        wanted = {t.lower() for t in tables}
        return any(
            table in wanted and not delta.for_table(table).is_empty()
            for table in delta.tables()
        )

    # ------------------------------------------------------------------
    def _sync_proposer(self) -> None:
        """Point the chain's proposer at the repaired variable set.

        Duck-typed: grouped proposers (``set_groups``) are refreshed
        from the model's group map, flat proposers (``set_variables``)
        from the variable list.  A proposer with neither hook is left
        alone — acceptable only if it never proposes removed variables.
        """
        proposer = self.kernel.proposer
        groups = getattr(self.model, "groups", None)
        if groups and hasattr(proposer, "set_groups"):
            proposer.set_groups(groups)
        elif hasattr(proposer, "set_variables"):
            proposer.set_variables(self.model.variables)

    def _local_burn(self, repair: GraphRepair) -> None:
        local = repair.local_variables()
        if not local:
            return
        steps = max(
            self.min_burn_steps, self.burn_steps_per_variable * len(local)
        )
        kernel = self.kernel
        saved = kernel.proposer
        kernel.proposer = UniformLabelProposer(local)
        try:
            kernel.run(steps)
        finally:
            kernel.proposer = saved
