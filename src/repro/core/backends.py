"""Chain-execution backends: sequential (in-process) and multiprocess.

The paper's §5.4 parallelization copies the initial world and runs up
to eight independent MCMC chains.  Pooling their estimators yields the
*statistical* benefit regardless of how the chains are scheduled; this
module adds the *wall-clock* benefit by running each chain in its own
OS process.

Two interchangeable backends drive a set of chains built by a
:data:`~repro.core.parallel.ChainFactory`:

* :class:`SequentialBackend` — chains run one after another in the
  calling process.  Deterministic, dependency-free, and the reference
  semantics: every other backend must produce bit-identical pooled
  marginals for the same factory and seeds.
* :class:`ProcessPoolBackend` — one worker process per chain.  Each
  worker receives a **pickled** ``(database, chain, queries)`` payload
  (the paper's "identical copies of the probabilistic database"), builds
  its own query evaluator, and keeps all chain state alive between
  ``run()`` calls, so anytime refinement continues the same chains.

Determinism: a chain's sample stream is a pure function of its pickled
RNG state, so ``sequential`` and ``process`` backends produce identical
pooled marginals for identical factories and seeds — the process
boundary only changes *where* the arithmetic happens.  Worker payloads
are explicitly pickled up front even on fork platforms, so a factory
whose products cannot cross a process boundary fails fast with a clear
error rather than behaving differently per platform.

Fault tolerance: with a :class:`~repro.resilience.ResilienceConfig`,
workers stream chain checkpoints — ``(world, RNG state, estimator
counts, progress)`` pickled at a sample boundary — and heartbeats back
to the supervising parent.  A worker that dies or wedges is killed,
respawned from its latest checkpoint, and driven through a *replay* of
every command issued after that checkpoint; because the sample stream
is a pure function of the checkpointed state, the recovered chain is
bit-identical to one that never crashed.  Without a config nothing
changes: no hooks fire, no extra messages flow, and a dead worker is a
raised :class:`~repro.errors.WorkerCrashError` exactly as before.

Timing: :class:`EvaluationResult` reports the caller-observed
``wall_elapsed`` and the summed per-chain ``cpu_elapsed`` separately;
speedup is their ratio.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Type

from repro.db.database import Database
from repro.errors import (
    CheckpointError,
    EvaluationError,
    RemoteTraceback,
    RetryExhaustedError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.mcmc.chain import MarkovChain
from repro.core.evaluator import EvaluationResult, QueryEvaluator
from repro.core.marginals import MarginalEstimator
from repro.core.materialized import MaterializedEvaluator
from repro.resilience import Checkpoint, ResilienceConfig
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.heartbeat import HeartbeatMonitor
from repro.rng import make_rng

__all__ = [
    "BACKENDS",
    "pool_estimators",
    "ChainBackend",
    "ProcessPoolBackend",
    "SequentialBackend",
    "make_backend",
    "validate_backend_name",
]


def default_worker_timeout() -> float | None:
    """Per-reply worker deadline in seconds, from ``REPRO_WORKER_TIMEOUT``
    (default 600; 0 or negative disables the deadline).  An env knob —
    like ``REPRO_SCALE`` for benchmark sizes — so long runs can raise
    the limit at any entry point without API changes."""
    raw = os.environ.get("REPRO_WORKER_TIMEOUT", "600")
    try:
        value = float(raw)
    except ValueError:
        raise EvaluationError(
            f"REPRO_WORKER_TIMEOUT must be a number of seconds "
            f"(<=0 disables), got {raw!r}"
        ) from None
    return value if value > 0 else None

# Builds one chain's world and sampler: ``factory(chain_index) ->
# (database_copy, chain)``.  (Re-exported by repro.core.parallel.)
ChainFactory = Callable[[int], Tuple[Database, MarkovChain]]


def pool_estimators(
    per_chain: Sequence[List[MarginalEstimator]],
) -> List[MarginalEstimator]:
    """Merge per-chain estimator lists (the paper's cross-chain
    averaging: counts and sample totals add).  Shared by the chain
    backends and by ShardedEvaluator's within-shard pooling."""
    merged = [MarginalEstimator() for _ in per_chain[0]]
    for estimators in per_chain:
        for target, source in zip(merged, estimators):
            target.merge(source)
    return merged


# ----------------------------------------------------------------------
# Chain state serialization (shared by checkpoints and worker start-up)
# ----------------------------------------------------------------------
def serialize_chain_state(
    db: Database,
    chain: MarkovChain,
    queries: Sequence,
    evaluator_cls: Type[QueryEvaluator],
    estimators: Optional[List[MarginalEstimator]],
) -> bytes:
    """Pickle one chain's complete resumable state.

    Estimators travel as ``(counts, num_samples)`` pairs rather than
    objects, and the database is pickled with its delta recorders
    suspended: recorders and materialized views belong to the evaluator
    that attached them and are rebuilt deterministically on resume.
    ``estimators=None`` marks a fresh (never-run) chain.
    """
    est_state = (
        None
        if estimators is None
        else [(e.counts(), e.num_samples) for e in estimators]
    )
    with db.suspended_recorders():
        return pickle.dumps((db, chain, tuple(queries), evaluator_cls, est_state))


def restore_evaluator(payload: bytes) -> QueryEvaluator:
    """Rebuild a ready-to-run evaluator from :func:`serialize_chain_state`
    output.  The evaluator's next sample is bit-identical to the one the
    serialized chain would have produced."""
    db, chain, queries, evaluator_cls, est_state = pickle.loads(payload)
    evaluator = evaluator_cls(db, chain, queries)
    if est_state is not None:
        evaluator.estimators = [
            MarginalEstimator.from_counts(counts, samples)
            for counts, samples in est_state
        ]
    return evaluator


def _chain_steps(chain) -> int:
    """Cumulative kernel proposals (checkpoint observability only)."""
    stats = getattr(getattr(chain, "kernel", None), "stats", None)
    return int(getattr(stats, "proposals", 0) or 0)


class ChainBackend:
    """Common contract of chain-execution backends.

    A backend is *stateful*: :meth:`start` builds ``num_chains`` chains
    from a factory, :meth:`run` advances **all** of them and returns the
    pooled :class:`EvaluationResult`, and repeated ``run()`` calls
    continue the same chains (anytime refinement).  :meth:`close`
    releases chain resources; afterwards the backend is unusable.
    """

    name = "abstract"

    def start(
        self,
        factory: ChainFactory,
        num_chains: int,
        queries: Sequence,
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
    ) -> None:
        raise NotImplementedError

    def run(
        self,
        samples_per_chain: int,
        burn_in: int = 0,
        include_initial: bool = True,
    ) -> EvaluationResult:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def __init__(self, resilience: ResilienceConfig | None = None) -> None:
        self._started = False
        self._closed = False
        self._resilience = resilience
        # Per-chain cumulative results from the most recent run().
        self.chain_results: List[EvaluationResult] = []

    @property
    def closed(self) -> bool:
        """Whether the backend has released its chains (a closed
        backend cannot run again; callers should rebuild)."""
        return self._closed

    @property
    def resilience(self) -> ResilienceConfig | None:
        return self._resilience

    def _check_started(self) -> None:
        if self._closed:
            raise EvaluationError(f"{self.name} backend is closed")
        if not self._started:
            raise EvaluationError(f"{self.name} backend was not started")

    def _store(self):
        """The checkpoint store, or ``None`` when checkpointing is off."""
        resil = self._resilience
        if resil is None or resil.checkpoint_every == 0:
            return None
        return resil.ensure_store()

    def __enter__(self) -> "ChainBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialBackend(ChainBackend):
    """Chains run one after another in the calling process.

    The deterministic fallback and reference implementation; also the
    right choice for a single chain or when worker start-up cost would
    dominate a short run.

    With a resilience config the backend writes a checkpoint per chain
    at every run boundary (and adopts existing checkpoints at
    ``start()``), which with a :class:`~repro.resilience.DiskCheckpointStore`
    survives the *calling process* — retries and fault injection do not
    apply in-process, where a worker crash is the caller's crash.
    """

    name = "sequential"

    def __init__(self, resilience: ResilienceConfig | None = None) -> None:
        super().__init__(resilience)
        self._evaluators: List[QueryEvaluator] = []
        self._cpu_totals: List[float] = []
        self._seqs: List[int] = []
        self._runs_completed = 0
        self._queries: Sequence = ()
        self._evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator

    def start(
        self,
        factory: ChainFactory,
        num_chains: int,
        queries: Sequence,
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
    ) -> None:
        if num_chains < 1:
            raise EvaluationError("need at least one chain")
        store = self._store()
        self._queries = tuple(queries)
        self._evaluator_cls = evaluator_cls
        for index in range(num_chains):
            adopted = None
            if store is not None:
                key = self._resilience.key_for(index)
                adopted = store.latest(key)
            if adopted is not None:
                self._evaluators.append(restore_evaluator(adopted.payload))
                self._seqs.append(adopted.seq)
                self._cpu_totals.append(adopted.cpu_total)
                continue
            db, chain = factory(index)
            self._evaluators.append(evaluator_cls(db, chain, queries))
            self._seqs.append(0)
            self._cpu_totals.append(0.0)
            if store is not None:
                store.put(
                    Checkpoint(
                        key=self._resilience.key_for(index),
                        seq=0,
                        runs_completed=0,
                        records_done=0,
                        initial_recorded=False,
                        steps=_chain_steps(chain),
                        payload=serialize_chain_state(
                            db, chain, self._queries, evaluator_cls, None
                        ),
                    )
                )
        self._started = True

    def run(
        self,
        samples_per_chain: int,
        burn_in: int = 0,
        include_initial: bool = True,
    ) -> EvaluationResult:
        self._check_started()
        store = self._store()
        started = time.perf_counter()
        cpu = 0.0
        per_chain: List[List[MarginalEstimator]] = []
        self.chain_results = []
        self._runs_completed += 1
        for index, evaluator in enumerate(self._evaluators):
            # Per-chain CPU seconds (burn-in included), not wall time,
            # so the accounting matches what process workers report
            # even when chains contend for cores.
            chain_started = time.process_time()
            evaluator.run(
                samples_per_chain,
                include_initial_sample=include_initial,
                burn_in=burn_in,
            )
            chain_cpu = time.process_time() - chain_started
            cpu += chain_cpu
            self._cpu_totals[index] += chain_cpu
            if store is not None:
                self._seqs[index] += 1
                store.put(
                    Checkpoint(
                        key=self._resilience.key_for(index),
                        seq=self._seqs[index],
                        runs_completed=self._runs_completed,
                        records_done=0,
                        initial_recorded=False,
                        steps=_chain_steps(evaluator.chain),
                        payload=serialize_chain_state(
                            evaluator.db,
                            evaluator.chain,
                            self._queries,
                            self._evaluator_cls,
                            evaluator.estimators,
                        ),
                        cpu_total=self._cpu_totals[index],
                    )
                )
            # Snapshot the estimators (as process workers do) so results
            # returned now don't mutate when the chains run again, and
            # report cumulative per-chain CPU matching the process
            # backend's accounting.
            snapshot = [e.copy() for e in evaluator.estimators]
            per_chain.append(snapshot)
            self.chain_results.append(
                EvaluationResult(
                    snapshot, self._cpu_totals[index], self._cpu_totals[index]
                )
            )
        wall = time.perf_counter() - started
        return EvaluationResult(pool_estimators(per_chain), wall, cpu)

    def close(self) -> None:
        for evaluator in self._evaluators:
            detach = getattr(evaluator, "detach", None)
            if detach is not None:
                detach()
        self._evaluators = []
        self._closed = True


# ----------------------------------------------------------------------
# Multiprocess backend
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerConfig:
    """Supervision knobs shipped to one worker incarnation.

    ``seq_start`` is the sequence number of the checkpoint the worker
    was built from (0 for a fresh chain); the worker's own checkpoints
    continue from there, keeping sequence numbers monotonic across
    incarnations.  ``records_base``/``initial_base`` describe how much
    of the first (resumed, partial) run command the payload already
    contains, so mid-run checkpoints taken while finishing it report
    absolute progress.  ``cpu_base`` seeds cumulative CPU accounting.
    """

    checkpoint_every: int
    heartbeat_every: int
    seq_start: int = 0
    records_base: int = 0
    initial_base: bool = False
    cpu_base: float = 0.0
    fault_spec: Optional[FaultSpec] = None


class _ChainWorker:
    """Worker-process side of the chain protocol.

    Commands from the parent: ``("run", samples, burn_in,
    include_initial)`` and ``("stop",)``.  Replies: ``("ok",
    estimators, cpu)`` per run and ``("error", traceback_text)`` on
    failure.  With a :class:`_WorkerConfig`, ``("hb",)`` heartbeats and
    ``("ckpt", seq, runs, records, initial, steps, payload, cpu)`` /
    ``("ckpt_fail", seq, message)`` messages interleave ahead of the
    ``ok`` — the parent treats any message as proof of life.
    """

    def __init__(self, conn, payload: bytes, config: Optional[_WorkerConfig]):
        self.conn = conn
        self.config = config
        db, chain, queries, evaluator_cls, est_state = pickle.loads(payload)
        self.queries = queries
        self.evaluator_cls = evaluator_cls
        self.evaluator = evaluator_cls(db, chain, queries)
        if est_state is not None:
            self.evaluator.estimators = [
                MarginalEstimator.from_counts(counts, samples)
                for counts, samples in est_state
            ]
        self.injector: Optional[FaultInjector] = None
        if config is not None and config.fault_spec is not None:
            self.injector = config.fault_spec.injector(pipe_dropper=conn.close)
        self.seq = config.seq_start if config is not None else 0
        self.cpu_total = config.cpu_base if config is not None else 0.0
        self.samples_total = 0
        self.last_ckpt_at = 0
        self.runs_completed = 0
        self.run_started = 0.0
        self.current_records = 0
        self.current_initial = False

    # ------------------------------------------------------------------
    def serve(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except EOFError:
                return
            if message[0] == "stop":
                return
            _, samples, burn_in, include_initial = message
            self.current_records = 0
            self.current_initial = include_initial
            hook = self._on_sample if self.config is not None else None
            self.run_started = time.process_time()  # this worker's CPU seconds
            self.evaluator.run(
                samples,
                on_sample=hook,
                include_initial_sample=include_initial,
                burn_in=burn_in,
            )
            cpu = time.process_time() - self.run_started
            self.cpu_total += cpu
            self.runs_completed += 1
            if (
                self.config is not None
                and self.config.checkpoint_every
                and self.samples_total > self.last_ckpt_at
            ):
                # Run-boundary checkpoint: keeps the common recovery case
                # (death between runs) replay-free.
                self._checkpoint(0, False, self.cpu_total)
            self.conn.send(
                ("ok", [e.copy() for e in self.evaluator.estimators], cpu)
            )

    # ------------------------------------------------------------------
    def _on_sample(self, index: int, elapsed: float, estimators) -> None:
        config = self.config
        assert config is not None
        self.current_records = index + 1
        self.samples_total += 1
        if self.injector is not None:
            self.injector.on_sample(self.samples_total - 1)
        if self.samples_total % config.heartbeat_every == 0:
            self.conn.send(("hb",))
        if (
            config.checkpoint_every
            and self.samples_total - self.last_ckpt_at >= config.checkpoint_every
        ):
            cpu_now = self.cpu_total + (time.process_time() - self.run_started)
            self._checkpoint(self.current_records, self.current_initial, cpu_now)

    def _checkpoint(
        self, records_done: int, initial_recorded: bool, cpu_now: float
    ) -> None:
        config = self.config
        assert config is not None
        seq = self.seq + 1
        if self.runs_completed == 0:
            # Still inside the first (possibly resumed-partial) command:
            # fold in the progress the spawn payload already contained.
            if records_done > 0:
                records_done += config.records_base
                initial_recorded = initial_recorded or config.initial_base
        try:
            if self.injector is not None:
                self.injector.on_checkpoint(seq)
            payload = serialize_chain_state(
                self.evaluator.db,
                self.evaluator.chain,
                self.queries,
                self.evaluator_cls,
                self.evaluator.estimators,
            )
            self.conn.send(
                (
                    "ckpt",
                    seq,
                    self.runs_completed,
                    records_done,
                    initial_recorded,
                    _chain_steps(self.evaluator.chain),
                    payload,
                    cpu_now,
                )
            )
        except CheckpointError as exc:
            # A failed checkpoint write must never kill a healthy chain;
            # it only widens the next recovery's replay window.
            self.conn.send(("ckpt_fail", seq, str(exc)))
        self.seq = seq
        self.last_ckpt_at = self.samples_total


def _chain_worker_main(
    conn, payload: bytes, config: Optional[_WorkerConfig] = None
) -> None:
    """Worker entry point: unpickle one chain's state and serve commands
    until ``("stop",)`` or the pipe closes.  Failures cross the pipe as
    ``("error", traceback_text)`` so the parent can re-raise with the
    remote stack attached."""
    try:
        _ChainWorker(conn, payload, config).serve()
    except Exception:  # pragma: no cover - exercised via error tests
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _WorkerHandle:
    """Parent-side view of one chain worker."""

    def __init__(self, process, conn, index: int, key: str = ""):
        self.process = process
        self.conn = conn
        self.index = index
        self.key = key
        self.cpu_total = 0.0
        self.incarnation = 0
        # Absolute run-command index the current incarnation's local
        # ``runs_completed`` counts from (0 for a fresh worker).
        self.runs_base = 0


class ProcessPoolBackend(ChainBackend):
    """One OS process per chain, alive for the backend's lifetime.

    ``start()`` builds every chain in the parent via the factory,
    pickles each ``(database, chain, queries)`` snapshot, and ships it
    to a dedicated worker.  ``run()`` broadcasts a run command to all
    workers and gathers their cumulative estimators, so chains execute
    concurrently and anytime refinement (`run()` again) continues the
    same chain state inside the same workers.

    Parameters
    ----------
    timeout:
        Seconds to wait for any single worker reply before declaring
        the run failed (guards CI against hung workers).  ``None``
        (default) reads the ``REPRO_WORKER_TIMEOUT`` environment
        variable (600s); zero or negative disables the deadline.
    resilience:
        A :class:`~repro.resilience.ResilienceConfig` enables
        supervision: workers stream heartbeats and checkpoints, a dead
        or wedged worker is respawned from its latest checkpoint (with
        seeded-jitter backoff, bounded by the config's retry policy)
        and replayed up to the in-flight command, and ``start()``
        adopts checkpoints already in the store — the supervisor-restart
        path when the store is disk-backed.  ``None`` (default) keeps
        the pre-existing fail-fast behavior.
    """

    name = "process"

    def __init__(
        self,
        timeout: float | None = None,
        resilience: ResilienceConfig | None = None,
    ):
        super().__init__(resilience)
        self.timeout = default_worker_timeout() if timeout is None else timeout
        if self.timeout is not None and self.timeout <= 0:
            self.timeout = None
        self._workers: List[_WorkerHandle] = []
        self._context = multiprocessing.get_context()
        self._commands: List[Tuple] = []
        self._queries: Sequence = ()
        self._evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator
        self._jitter_rng = make_rng(resilience.seed if resilience else 0)
        self.heartbeats = HeartbeatMonitor()
        self.respawns = 0
        self.checkpoints_stored = 0
        self.checkpoints_skipped = 0

    # ------------------------------------------------------------------
    def _worker_config(self, index: int, incarnation: int = 0) -> Optional[_WorkerConfig]:
        resil = self._resilience
        if resil is None:
            return None
        return _WorkerConfig(
            checkpoint_every=resil.checkpoint_every,
            heartbeat_every=resil.heartbeat_every,
            fault_spec=(
                resil.fault_plan.for_worker(index, incarnation)
                if resil.fault_plan is not None
                else None
            ),
        )

    def _spawn(self, index: int, payload: bytes, config: Optional[_WorkerConfig]):
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_chain_worker_main,
            args=(child_conn, payload, config),
            daemon=True,
            name=f"repro-chain-{index}",
        )
        process.start()
        child_conn.close()  # the worker owns its end now
        return process, parent_conn

    def start(
        self,
        factory: ChainFactory,
        num_chains: int,
        queries: Sequence,
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
    ) -> None:
        if num_chains < 1:
            raise EvaluationError("need at least one chain")
        store = self._store()
        self._queries = tuple(queries)
        self._evaluator_cls = evaluator_cls
        try:
            for index in range(num_chains):
                key = (
                    self._resilience.key_for(index)
                    if self._resilience is not None
                    else f"chain:{index}"
                )
                adopted = store.latest(key) if store is not None else None
                if adopted is not None:
                    # Supervisor restart: resume from the stored state,
                    # re-baselined to this backend's (empty) command
                    # history so later replay math stays consistent.
                    baseline = Checkpoint(
                        key=key,
                        seq=adopted.seq + 1,
                        runs_completed=0,
                        records_done=0,
                        initial_recorded=False,
                        steps=adopted.steps,
                        payload=adopted.payload,
                        cpu_total=adopted.cpu_total,
                    )
                    store.put(baseline)
                    config = self._worker_config(index)
                    if config is not None:
                        config = _WorkerConfig(
                            checkpoint_every=config.checkpoint_every,
                            heartbeat_every=config.heartbeat_every,
                            seq_start=baseline.seq,
                            cpu_base=baseline.cpu_total,
                            fault_spec=config.fault_spec,
                        )
                    process, conn = self._spawn(index, baseline.payload, config)
                    handle = _WorkerHandle(process, conn, index, key)
                    handle.cpu_total = baseline.cpu_total
                    self._workers.append(handle)
                    continue
                db, chain = factory(index)
                try:
                    payload = serialize_chain_state(
                        db, chain, self._queries, evaluator_cls, None
                    )
                except Exception as exc:
                    raise EvaluationError(
                        "process backend requires picklable chain snapshots; "
                        f"chain {index} failed to pickle: {exc!r} "
                        "(closures in templates/proposers are the usual cause; "
                        "use bound methods or module-level functions)"
                    ) from exc
                if store is not None:
                    # Seq-0 baseline: recovery logic can always assume a
                    # checkpoint exists, even before the first cadence.
                    store.put(
                        Checkpoint(
                            key=key,
                            seq=0,
                            runs_completed=0,
                            records_done=0,
                            initial_recorded=False,
                            steps=_chain_steps(chain),
                            payload=payload,
                        )
                    )
                process, conn = self._spawn(index, payload, self._worker_config(index))
                self._workers.append(_WorkerHandle(process, conn, index, key))
        except BaseException:
            self.close()
            raise
        self._started = True

    def worker_pids(self) -> List[int]:
        """PIDs of the live chain workers (for tests/monitoring)."""
        return [w.process.pid for w in self._workers]

    def stats(self) -> dict:
        """Supervision counters (observability; cheap to call)."""
        return {
            "workers": len(self._workers),
            "respawns": self.respawns,
            "checkpoints_stored": self.checkpoints_stored,
            "checkpoints_skipped": self.checkpoints_skipped,
            "heartbeats": self.heartbeats.beats,
            "incarnations": {w.index: w.incarnation for w in self._workers},
        }

    # ------------------------------------------------------------------
    def run(
        self,
        samples_per_chain: int,
        burn_in: int = 0,
        include_initial: bool = True,
    ) -> EvaluationResult:
        self._check_started()
        started = time.perf_counter()
        command = ("run", samples_per_chain, burn_in, include_initial)
        self._commands.append(command)
        for worker in self._workers:
            self._dispatch(worker, command)
        per_chain: List[List[MarginalEstimator]] = []
        cpu = 0.0
        self.chain_results = []
        for worker in self._workers:
            reply = self._await_ok(worker, recover=True)
            _, estimators, worker_cpu = reply
            worker.cpu_total += worker_cpu
            cpu += worker_cpu
            per_chain.append(estimators)
            self.chain_results.append(
                EvaluationResult(estimators, worker.cpu_total, worker.cpu_total)
            )
        wall = time.perf_counter() - started
        return EvaluationResult(pool_estimators(per_chain), wall, cpu)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _dispatch(self, worker: _WorkerHandle, command: Tuple) -> None:
        try:
            worker.conn.send(command)
        except (BrokenPipeError, OSError) as exc:
            failure = WorkerCrashError(
                f"chain worker {worker.index} is gone (pipe closed: {exc!r})",
                worker_index=worker.index,
            )
            # _recover leaves the current command dispatched to the
            # replacement worker, so the gather loop proceeds normally.
            self._recover(worker, failure)

    def _await_ok(self, worker: _WorkerHandle, *, recover: bool):
        """Pump one worker's messages until its ``ok`` reply.

        Heartbeats and checkpoints are absorbed along the way.  Worker
        death or silence triggers checkpoint recovery when ``recover``
        is set (the top-level gather); during replay the failure
        propagates to the recovery loop instead, which starts the next
        incarnation."""
        while True:
            try:
                message = self._next_message(worker)
            except (WorkerTimeoutError, WorkerCrashError) as exc:
                if recover:
                    self._recover(worker, exc)
                    continue
                raise
            kind = message[0]
            if kind == "hb":
                self.heartbeats.beat(worker.key)
                continue
            if kind == "ckpt":
                self._store_checkpoint(worker, message)
                continue
            if kind == "ckpt_fail":
                self.checkpoints_skipped += 1
                continue
            if kind == "ok":
                return message
            # "error": an exception inside the chain itself.  Replaying
            # deterministic state would raise it again, so this is not a
            # retriable failure — surface it with the remote stack.
            remote = message[1]
            self.close()
            raise WorkerCrashError(
                f"chain worker {worker.index} failed:\n{remote}",
                worker_index=worker.index,
                remote_traceback=remote,
            ) from RemoteTraceback(remote)

    def _next_message(self, worker: _WorkerHandle):
        """One message from ``worker``, or a typed failure.

        The deadline is a *silence* window — any message (heartbeat,
        checkpoint, reply) restarts it, because each arrival returns and
        the next call re-arms.  Raises :class:`WorkerTimeoutError` when
        the window empties and :class:`WorkerCrashError` when the
        process is found dead with nothing left in its pipe."""
        if self._resilience is not None:
            window: float | None = self._resilience.heartbeat_timeout
            if self.timeout is not None:
                window = min(window, self.timeout)
        else:
            window = self.timeout
        deadline = time.monotonic() + window if window is not None else None
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                raise WorkerTimeoutError(
                    f"chain worker {worker.index} timed out after "
                    f"{window:.0f}s of silence (raise REPRO_WORKER_TIMEOUT "
                    "for long runs)",
                    worker_index=worker.index,
                )
            if worker.conn.poll(0.05):
                try:
                    return worker.conn.recv()
                # EOFError on orderly close; OSError (e.g.
                # ConnectionResetError) when the worker was killed with
                # the pipe mid-write.  A dead process gets its exit
                # code attached; a wedged-alive one (dropped pipe)
                # reports None.
                except (EOFError, OSError):
                    worker.process.join(timeout=0.5)
                    exit_code = worker.process.exitcode
                    detail = (
                        f" (exit code {exit_code})" if exit_code is not None else ""
                    )
                    raise WorkerCrashError(
                        f"chain worker {worker.index} exited "
                        f"unexpectedly{detail}",
                        worker_index=worker.index,
                        exit_code=exit_code,
                    ) from None
            if not worker.process.is_alive():
                # Drain messages sent just before death (the pipe buffer
                # outlives the process), then report.
                if worker.conn.poll(0):
                    try:
                        return worker.conn.recv()
                    except (EOFError, OSError):
                        pass
                raise WorkerCrashError(
                    f"chain worker {worker.index} died "
                    f"(exit code {worker.process.exitcode})",
                    worker_index=worker.index,
                    exit_code=worker.process.exitcode,
                )

    def _store_checkpoint(self, worker: _WorkerHandle, message) -> None:
        _, seq, local_runs, records_done, initial_recorded, steps, payload, cpu = (
            message
        )
        checkpoint = Checkpoint(
            key=worker.key,
            seq=seq,
            runs_completed=worker.runs_base + local_runs,
            records_done=records_done,
            initial_recorded=initial_recorded,
            steps=steps,
            payload=payload,
            cpu_total=cpu,
        )
        try:
            self._resilience.store.put(checkpoint)
            self.checkpoints_stored += 1
        except CheckpointError:
            # Same contract as the worker side: a checkpoint that cannot
            # be stored widens the replay window but must not fail the
            # run that produced it.
            self.checkpoints_skipped += 1

    def _recover(self, worker: _WorkerHandle, failure: EvaluationError) -> None:
        """Respawn ``worker`` from its latest checkpoint and replay it to
        the in-flight command, or raise if supervision is off / the
        retry budget is spent.  On return the current command has been
        dispatched to the replacement and its reply is pending."""
        resil = self._resilience
        store = self._store()
        if store is None:
            self.close()
            raise failure
        policy = resil.retry
        while True:
            attempt = worker.incarnation + 1
            if attempt >= policy.max_attempts:
                self.close()
                raise RetryExhaustedError(
                    f"chain worker {worker.index} failed {attempt} time(s); "
                    f"retry budget ({policy.max_attempts} attempts) exhausted",
                    attempts=attempt,
                ) from failure
            checkpoint = store.latest(worker.key)
            if checkpoint is None:
                # No baseline to rebuild from (store was cleared behind
                # our back): unrecoverable.
                self.close()
                raise failure
            self._kill_worker(worker)
            pause = policy.delay(attempt, self._jitter_rng)
            if pause > 0:
                time.sleep(pause)
            worker.incarnation += 1
            worker.runs_base = checkpoint.runs_completed
            worker.cpu_total = checkpoint.cpu_total
            self.heartbeats.drop(worker.key)
            self.respawns += 1
            config = self._worker_config(worker.index, worker.incarnation)
            if config is not None:
                config = _WorkerConfig(
                    checkpoint_every=config.checkpoint_every,
                    heartbeat_every=config.heartbeat_every,
                    seq_start=checkpoint.seq,
                    records_base=checkpoint.records_done,
                    initial_base=checkpoint.initial_recorded,
                    cpu_base=checkpoint.cpu_total,
                    fault_spec=config.fault_spec,
                )
            worker.process, worker.conn = self._spawn(
                worker.index, checkpoint.payload, config
            )
            try:
                self._replay(worker, checkpoint)
                return
            except (WorkerTimeoutError, WorkerCrashError) as exc:
                if self._closed:
                    # An "error" reply during replay: a deterministic
                    # failure inside the chain, already terminal.
                    raise
                # The replacement died too; loop for another incarnation
                # (the budget check above bounds this).
                failure = exc

    def _replay(self, worker: _WorkerHandle, checkpoint: Checkpoint) -> None:
        """Drive a freshly respawned worker through every command issued
        after ``checkpoint``, discarding their replies (their samples are
        already part of the cumulative estimator state), and dispatch
        the in-flight command last — its reply is left for the caller.

        For a checkpoint taken ``records_done`` samples into a command,
        the remainder is ``("run", n + include_initial - records_done,
        0, False)``: burn-in already happened before recording started
        and the initial world was counted iff the original command asked
        for it."""
        j = len(self._commands) - 1
        k, r = checkpoint.runs_completed, checkpoint.records_done
        if k > j:
            # The in-flight command finished and was checkpointed, but
            # its "ok" was lost with the worker: ask for zero further
            # samples to re-materialize the reply.
            queue: List[Tuple] = [("run", 0, 0, False)]
        else:
            queue = []
            if r > 0:
                _, n, _, include_initial = self._commands[k]
                remaining = n + (1 if include_initial else 0) - r
                queue.append(("run", remaining, 0, False))
                k += 1
            queue.extend(self._commands[k : j + 1])
            if not queue:
                queue.append(("run", 0, 0, False))
        for command in queue[:-1]:
            worker.conn.send(command)
            reply = self._await_ok(worker, recover=False)
            worker.cpu_total += reply[2]
        worker.conn.send(queue[-1])

    def _kill_worker(self, worker: _WorkerHandle) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - safety net
                worker.process.kill()
                worker.process.join(timeout=5.0)

    # ------------------------------------------------------------------
    def close(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - safety net
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        self._workers = []
        self._closed = True


# ----------------------------------------------------------------------
BACKENDS = {
    SequentialBackend.name: SequentialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def validate_backend_name(name: str) -> str:
    """Return ``name`` if it names a known backend, else raise."""
    if name not in BACKENDS:
        raise EvaluationError(
            f"unknown backend {name!r} (expected one of {sorted(BACKENDS)})"
        )
    return name


def make_backend(name: str, **kwargs) -> ChainBackend:
    """Instantiate a backend by name (``"sequential"`` or ``"process"``)."""
    return BACKENDS[validate_backend_name(name)](**kwargs)
