"""Chain-execution backends: sequential (in-process) and multiprocess.

The paper's §5.4 parallelization copies the initial world and runs up
to eight independent MCMC chains.  Pooling their estimators yields the
*statistical* benefit regardless of how the chains are scheduled; this
module adds the *wall-clock* benefit by running each chain in its own
OS process.

Two interchangeable backends drive a set of chains built by a
:data:`~repro.core.parallel.ChainFactory`:

* :class:`SequentialBackend` — chains run one after another in the
  calling process.  Deterministic, dependency-free, and the reference
  semantics: every other backend must produce bit-identical pooled
  marginals for the same factory and seeds.
* :class:`ProcessPoolBackend` — one worker process per chain.  Each
  worker receives a **pickled** ``(database, chain, queries)`` payload
  (the paper's "identical copies of the probabilistic database"), builds
  its own query evaluator, and keeps all chain state alive between
  ``run()`` calls, so anytime refinement continues the same chains.

Determinism: a chain's sample stream is a pure function of its pickled
RNG state, so ``sequential`` and ``process`` backends produce identical
pooled marginals for identical factories and seeds — the process
boundary only changes *where* the arithmetic happens.  Worker payloads
are explicitly pickled up front even on fork platforms, so a factory
whose products cannot cross a process boundary fails fast with a clear
error rather than behaving differently per platform.

Timing: :class:`EvaluationResult` reports the caller-observed
``wall_elapsed`` and the summed per-chain ``cpu_elapsed`` separately;
speedup is their ratio.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from typing import Callable, List, Sequence, Tuple, Type

from repro.db.database import Database
from repro.errors import EvaluationError
from repro.mcmc.chain import MarkovChain
from repro.core.evaluator import EvaluationResult, QueryEvaluator
from repro.core.marginals import MarginalEstimator
from repro.core.materialized import MaterializedEvaluator

__all__ = [
    "BACKENDS",
    "pool_estimators",
    "ChainBackend",
    "ProcessPoolBackend",
    "SequentialBackend",
    "make_backend",
    "validate_backend_name",
]


def default_worker_timeout() -> float | None:
    """Per-reply worker deadline in seconds, from ``REPRO_WORKER_TIMEOUT``
    (default 600; 0 or negative disables the deadline).  An env knob —
    like ``REPRO_SCALE`` for benchmark sizes — so long runs can raise
    the limit at any entry point without API changes."""
    raw = os.environ.get("REPRO_WORKER_TIMEOUT", "600")
    try:
        value = float(raw)
    except ValueError:
        raise EvaluationError(
            f"REPRO_WORKER_TIMEOUT must be a number of seconds "
            f"(<=0 disables), got {raw!r}"
        ) from None
    return value if value > 0 else None

# Builds one chain's world and sampler: ``factory(chain_index) ->
# (database_copy, chain)``.  (Re-exported by repro.core.parallel.)
ChainFactory = Callable[[int], Tuple[Database, MarkovChain]]


def pool_estimators(
    per_chain: Sequence[List[MarginalEstimator]],
) -> List[MarginalEstimator]:
    """Merge per-chain estimator lists (the paper's cross-chain
    averaging: counts and sample totals add).  Shared by the chain
    backends and by ShardedEvaluator's within-shard pooling."""
    merged = [MarginalEstimator() for _ in per_chain[0]]
    for estimators in per_chain:
        for target, source in zip(merged, estimators):
            target.merge(source)
    return merged


class ChainBackend:
    """Common contract of chain-execution backends.

    A backend is *stateful*: :meth:`start` builds ``num_chains`` chains
    from a factory, :meth:`run` advances **all** of them and returns the
    pooled :class:`EvaluationResult`, and repeated ``run()`` calls
    continue the same chains (anytime refinement).  :meth:`close`
    releases chain resources; afterwards the backend is unusable.
    """

    name = "abstract"

    def start(
        self,
        factory: ChainFactory,
        num_chains: int,
        queries: Sequence,
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
    ) -> None:
        raise NotImplementedError

    def run(
        self,
        samples_per_chain: int,
        burn_in: int = 0,
        include_initial: bool = True,
    ) -> EvaluationResult:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def __init__(self) -> None:
        self._started = False
        self._closed = False
        # Per-chain cumulative results from the most recent run().
        self.chain_results: List[EvaluationResult] = []

    @property
    def closed(self) -> bool:
        """Whether the backend has released its chains (a closed
        backend cannot run again; callers should rebuild)."""
        return self._closed

    def _check_started(self) -> None:
        if self._closed:
            raise EvaluationError(f"{self.name} backend is closed")
        if not self._started:
            raise EvaluationError(f"{self.name} backend was not started")

    def __enter__(self) -> "ChainBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialBackend(ChainBackend):
    """Chains run one after another in the calling process.

    The deterministic fallback and reference implementation; also the
    right choice for a single chain or when worker start-up cost would
    dominate a short run.
    """

    name = "sequential"

    def __init__(self) -> None:
        super().__init__()
        self._evaluators: List[QueryEvaluator] = []
        self._cpu_totals: List[float] = []

    def start(
        self,
        factory: ChainFactory,
        num_chains: int,
        queries: Sequence,
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
    ) -> None:
        if num_chains < 1:
            raise EvaluationError("need at least one chain")
        for index in range(num_chains):
            db, chain = factory(index)
            self._evaluators.append(evaluator_cls(db, chain, queries))
        self._cpu_totals = [0.0] * num_chains
        self._started = True

    def run(
        self,
        samples_per_chain: int,
        burn_in: int = 0,
        include_initial: bool = True,
    ) -> EvaluationResult:
        self._check_started()
        started = time.perf_counter()
        cpu = 0.0
        per_chain: List[List[MarginalEstimator]] = []
        self.chain_results = []
        for index, evaluator in enumerate(self._evaluators):
            # Per-chain CPU seconds (burn-in included), not wall time,
            # so the accounting matches what process workers report
            # even when chains contend for cores.
            chain_started = time.process_time()
            evaluator.run(
                samples_per_chain,
                include_initial_sample=include_initial,
                burn_in=burn_in,
            )
            chain_cpu = time.process_time() - chain_started
            cpu += chain_cpu
            self._cpu_totals[index] += chain_cpu
            # Snapshot the estimators (as process workers do) so results
            # returned now don't mutate when the chains run again, and
            # report cumulative per-chain CPU matching the process
            # backend's accounting.
            snapshot = [e.copy() for e in evaluator.estimators]
            per_chain.append(snapshot)
            self.chain_results.append(
                EvaluationResult(
                    snapshot, self._cpu_totals[index], self._cpu_totals[index]
                )
            )
        wall = time.perf_counter() - started
        return EvaluationResult(pool_estimators(per_chain), wall, cpu)

    def close(self) -> None:
        for evaluator in self._evaluators:
            detach = getattr(evaluator, "detach", None)
            if detach is not None:
                detach()
        self._evaluators = []
        self._closed = True


# ----------------------------------------------------------------------
# Multiprocess backend
# ----------------------------------------------------------------------
def _chain_worker_main(conn, payload: bytes) -> None:
    """Worker entry point: unpickle one chain's world, then serve
    ``("run", samples, burn_in, include_initial)`` commands until
    ``("stop",)`` or the pipe closes.

    Every reply carries *cumulative* estimator state plus the CPU
    seconds (``time.process_time``) the worker spent on that run — the
    per-chain contribution to ``EvaluationResult.cpu_elapsed``.
    """
    try:
        db, chain, queries, evaluator_cls = pickle.loads(payload)
        evaluator = evaluator_cls(db, chain, queries)
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            if message[0] == "stop":
                return
            _, samples, burn_in, include_initial = message
            started = time.process_time()  # this worker's CPU seconds
            evaluator.run(
                samples,
                include_initial_sample=include_initial,
                burn_in=burn_in,
            )
            cpu = time.process_time() - started
            conn.send(
                ("ok", [e.copy() for e in evaluator.estimators], cpu)
            )
    except Exception:  # pragma: no cover - exercised via error tests
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _WorkerHandle:
    """Parent-side view of one chain worker."""

    def __init__(self, process, conn, index: int):
        self.process = process
        self.conn = conn
        self.index = index
        self.cpu_total = 0.0


class ProcessPoolBackend(ChainBackend):
    """One OS process per chain, alive for the backend's lifetime.

    ``start()`` builds every chain in the parent via the factory,
    pickles each ``(database, chain, queries)`` snapshot, and ships it
    to a dedicated worker.  ``run()`` broadcasts a run command to all
    workers and gathers their cumulative estimators, so chains execute
    concurrently and anytime refinement (`run()` again) continues the
    same chain state inside the same workers.

    Parameters
    ----------
    timeout:
        Seconds to wait for any single worker reply before declaring
        the run failed (guards CI against hung workers).  ``None``
        (default) reads the ``REPRO_WORKER_TIMEOUT`` environment
        variable (600s); zero or negative disables the deadline.
    """

    name = "process"

    def __init__(self, timeout: float | None = None):
        super().__init__()
        self.timeout = default_worker_timeout() if timeout is None else timeout
        if self.timeout is not None and self.timeout <= 0:
            self.timeout = None
        self._workers: List[_WorkerHandle] = []
        self._context = multiprocessing.get_context()

    # ------------------------------------------------------------------
    def start(
        self,
        factory: ChainFactory,
        num_chains: int,
        queries: Sequence,
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
    ) -> None:
        if num_chains < 1:
            raise EvaluationError("need at least one chain")
        try:
            for index in range(num_chains):
                db, chain = factory(index)
                try:
                    payload = pickle.dumps((db, chain, queries, evaluator_cls))
                except Exception as exc:
                    raise EvaluationError(
                        "process backend requires picklable chain snapshots; "
                        f"chain {index} failed to pickle: {exc!r} "
                        "(closures in templates/proposers are the usual cause; "
                        "use bound methods or module-level functions)"
                    ) from exc
                parent_conn, child_conn = self._context.Pipe(duplex=True)
                process = self._context.Process(
                    target=_chain_worker_main,
                    args=(child_conn, payload),
                    daemon=True,
                    name=f"repro-chain-{index}",
                )
                process.start()
                child_conn.close()  # the worker owns its end now
                self._workers.append(_WorkerHandle(process, parent_conn, index))
        except BaseException:
            self.close()
            raise
        self._started = True

    def worker_pids(self) -> List[int]:
        """PIDs of the live chain workers (for tests/monitoring)."""
        return [w.process.pid for w in self._workers]

    # ------------------------------------------------------------------
    def run(
        self,
        samples_per_chain: int,
        burn_in: int = 0,
        include_initial: bool = True,
    ) -> EvaluationResult:
        self._check_started()
        started = time.perf_counter()
        command = ("run", samples_per_chain, burn_in, include_initial)
        for worker in self._workers:
            try:
                worker.conn.send(command)
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise EvaluationError(
                    f"chain worker {worker.index} is gone "
                    f"(pipe closed: {exc!r})"
                ) from exc
        per_chain: List[List[MarginalEstimator]] = []
        cpu = 0.0
        self.chain_results = []
        for worker in self._workers:
            reply = self._receive(worker)
            if reply[0] == "error":
                self.close()
                raise EvaluationError(
                    f"chain worker {worker.index} failed:\n{reply[1]}"
                )
            _, estimators, worker_cpu = reply
            worker.cpu_total += worker_cpu
            cpu += worker_cpu
            per_chain.append(estimators)
            self.chain_results.append(
                EvaluationResult(estimators, worker.cpu_total, worker.cpu_total)
            )
        wall = time.perf_counter() - started
        return EvaluationResult(pool_estimators(per_chain), wall, cpu)

    def _receive(self, worker: _WorkerHandle):
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                self.close()
                raise EvaluationError(
                    f"chain worker {worker.index} timed out after "
                    f"{self.timeout:.0f}s (raise REPRO_WORKER_TIMEOUT "
                    "for long runs)"
                )
            if worker.conn.poll(0.2):
                try:
                    return worker.conn.recv()
                # EOFError on orderly close; OSError (e.g.
                # ConnectionResetError) when the worker was killed with
                # the pipe mid-write.  Either way the backend must shut
                # down fully or the surviving workers leak.
                except (EOFError, OSError):
                    self.close()
                    raise EvaluationError(
                        f"chain worker {worker.index} exited unexpectedly"
                    ) from None
            if not worker.process.is_alive():
                # Drain any reply sent just before death, else report.
                if worker.conn.poll(0):
                    try:
                        return worker.conn.recv()
                    except (EOFError, OSError):
                        pass
                self.close()
                raise EvaluationError(
                    f"chain worker {worker.index} died "
                    f"(exit code {worker.process.exitcode})"
                )

    # ------------------------------------------------------------------
    def close(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - safety net
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        self._workers = []
        self._closed = True


# ----------------------------------------------------------------------
BACKENDS = {
    SequentialBackend.name: SequentialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def validate_backend_name(name: str) -> str:
    """Return ``name`` if it names a known backend, else raise."""
    if name not in BACKENDS:
        raise EvaluationError(
            f"unknown backend {name!r} (expected one of {sorted(BACKENDS)})"
        )
    return name


def make_backend(name: str, **kwargs) -> ChainBackend:
    """Instantiate a backend by name (``"sequential"`` or ``"process"``)."""
    return BACKENDS[validate_backend_name(name)](**kwargs)
