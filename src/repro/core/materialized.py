"""MH query evaluation with view maintenance — the paper's Algorithm 1.

The full query runs exactly once, on the initial world.  A delta
recorder (the auxiliary Δ−/Δ+ tables of the prototype, §5) captures the
tuples changed by each batch of ``k`` walk-steps; the materialized view
folds that delta in via the Blakeley rewrite (Eq. 6), at cost
proportional to ``|Δ|`` rather than ``|w|``.  Multiset counters provide
the projection bookkeeping of §4.2's Remark.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.db.database import Database
from repro.db.multiset import Multiset
from repro.db.ra.ast import PlanNode
from repro.db.view import MaterializedView
from repro.mcmc.chain import MarkovChain
from repro.core.evaluator import QueryEvaluator

__all__ = ["MaterializedEvaluator"]


class MaterializedEvaluator(QueryEvaluator):
    """Maintains each query's answer incrementally across samples."""

    def __init__(
        self,
        db: Database,
        chain: MarkovChain,
        queries: Sequence[str | PlanNode],
    ):
        super().__init__(db, chain, queries)
        self._recorder = None
        self._views: List[MaterializedView] = []

    def _prepare(self) -> None:
        # Initialization of Algorithm 1: attach the Δ recorder, then run
        # each full query once to materialize the initial answers.
        # Idempotent so that run() can be called in increments without
        # re-executing the full queries (the whole point of Eq. 6).
        if self._recorder is None:
            self._recorder = self.db.attach_recorder()
        if not self._views:
            self._views = [MaterializedView(self.db, plan) for plan in self.plans]
            self._recorder.pop()  # view construction reads, never writes

    def _answers(self) -> List[Multiset]:
        assert self._recorder is not None, "run() must call _prepare() first"
        delta = self._recorder.pop()
        if not delta.is_empty():
            for view in self._views:
                view.apply(delta)
        return [view.result() for view in self._views]

    def detach(self) -> None:
        """Release the delta recorder (stop observing the database)."""
        if self._recorder is not None:
            self.db.detach_recorder(self._recorder)
            self._recorder = None
