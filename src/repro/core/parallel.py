"""Parallel-chain query evaluation (paper §5.4).

The paper copies the initial world, runs up to eight independent
evaluators, and averages their marginal estimates — observing
super-linear error reduction because cross-chain samples are far more
independent than within-chain samples.

Fig. 5 measures *statistical* efficiency at a fixed per-chain sample
budget, which is independent of wall-clock concurrency; chains here run
sequentially with independent seeds (deterministic and portable), and
the estimator pooling is identical to the paper's averaging.  See
DESIGN.md (substitutions) for the discussion.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, Type

from repro.db.database import Database
from repro.errors import EvaluationError
from repro.mcmc.chain import MarkovChain
from repro.core.evaluator import EvaluationResult, QueryEvaluator
from repro.core.marginals import MarginalEstimator
from repro.core.materialized import MaterializedEvaluator

__all__ = ["ChainFactory", "ParallelEvaluator"]

# Builds one chain's world and sampler: ``factory(chain_index) ->
# (database_copy, chain)``.  Implementations must give every chain its
# own database copy and an independently seeded RNG.
ChainFactory = Callable[[int], Tuple[Database, MarkovChain]]


class ParallelEvaluator:
    """Averages marginals over independent MCMC chains."""

    def __init__(
        self,
        factory: ChainFactory,
        queries: Sequence[str],
        num_chains: int,
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
    ):
        if num_chains < 1:
            raise EvaluationError("need at least one chain")
        self.factory = factory
        self.queries = list(queries)
        self.num_chains = num_chains
        self.evaluator_cls = evaluator_cls
        self.chain_results: List[EvaluationResult] = []

    def run(self, samples_per_chain: int, burn_in: int = 0) -> EvaluationResult:
        """Run every chain for ``samples_per_chain`` thinned samples and
        pool the counts (the paper's cross-chain averaging).  ``burn_in``
        thinned samples are discarded per chain before recording."""
        self.chain_results = []
        merged = [MarginalEstimator() for _ in self.queries]
        elapsed = 0.0
        for index in range(self.num_chains):
            db, chain = self.factory(index)
            evaluator = self.evaluator_cls(db, chain, self.queries)
            result = evaluator.run(samples_per_chain, burn_in=burn_in)
            self.chain_results.append(result)
            elapsed += result.elapsed
            for target, source in zip(merged, result.estimators):
                target.merge(source)
        return EvaluationResult(merged, elapsed)
