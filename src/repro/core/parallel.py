"""Parallel-chain query evaluation (paper §5.4).

The paper copies the initial world, runs up to eight independent
evaluators, and averages their marginal estimates — observing
super-linear error reduction because cross-chain samples are far more
independent than within-chain samples.

:class:`ParallelEvaluator` owns the estimator pooling; *where* the
chains execute is delegated to a :mod:`repro.core.backends` backend:

* ``backend="sequential"`` (default) — chains run one after another in
  this process.  Deterministic, portable, zero start-up cost; measures
  the paper's *statistical* efficiency at a fixed sample budget.
* ``backend="process"`` — one OS process per chain, fed a pickled
  snapshot of its world; measures real wall-clock speedup on multicore
  hardware.

Determinism guarantee: chain seeds come from the factory, and a chain's
sample stream is a pure function of its (pickled) RNG state, so both
backends produce **identical pooled marginals** for identical factories
and seeds — the backends differ only in scheduling.  The returned
:class:`~repro.core.evaluator.EvaluationResult` reports wall-clock time
(``wall_elapsed``) and summed per-chain compute time (``cpu_elapsed``)
separately; their ratio is the realized speedup.
"""

from __future__ import annotations

from typing import List, Sequence, Type

from repro.errors import EvaluationError
from repro.core.backends import ChainFactory, make_backend, validate_backend_name
from repro.core.evaluator import EvaluationResult, QueryEvaluator
from repro.core.materialized import MaterializedEvaluator
from repro.resilience import ResilienceConfig

__all__ = ["ChainFactory", "ParallelEvaluator"]


class ParallelEvaluator:
    """Averages marginals over independent MCMC chains.

    Each :meth:`run` call rebuilds the chains from the factory (restart
    semantics — use the session layer for anytime continuation), drives
    them through the selected backend, and pools the counts.
    """

    def __init__(
        self,
        factory: ChainFactory,
        queries: Sequence[str],
        num_chains: int,
        evaluator_cls: Type[QueryEvaluator] = MaterializedEvaluator,
        backend: str = "sequential",
        resilience: "ResilienceConfig | None" = None,
    ):
        if num_chains < 1:
            raise EvaluationError("need at least one chain")
        validate_backend_name(backend)
        self.factory = factory
        self.queries = list(queries)
        self.num_chains = num_chains
        self.evaluator_cls = evaluator_cls
        self.backend = backend
        self.resilience = resilience
        self.chain_results: List[EvaluationResult] = []

    def run(self, samples_per_chain: int, burn_in: int = 0) -> EvaluationResult:
        """Run every chain for ``samples_per_chain`` thinned samples and
        pool the counts (the paper's cross-chain averaging).  ``burn_in``
        thinned samples are discarded per chain before recording."""
        backend = make_backend(self.backend, resilience=self.resilience)
        try:
            backend.start(
                self.factory, self.num_chains, self.queries, self.evaluator_cls
            )
            result = backend.run(samples_per_chain, burn_in=burn_in)
            self.chain_results = backend.chain_results
        finally:
            backend.close()
        return result
