"""Query-targeted proposal distributions (paper §4.1, future work).

§4.1: *"Another interesting scientific question is how to inject query
specific knowledge directly into the proposal distribution.  For
example, a query might target an isolated subset of the database, then
the proposal distribution only has to sample this subset"* — suggested
sources: domain experts, graph/query structure analysis, or learning.

:class:`MixtureProposer` implements the structural variant: a biased
mixture between a proposer over the query-relevant variables and a
global proposer.  Because both components draw the variable and the new
value from *fixed* sets (state-independent), the mixture kernel is
symmetric and needs no Hastings correction; the global component keeps
the chain ergodic over the full state space.

:func:`relevant_variables` extracts the query-relevant variable subset
by analysing plan predicates: a variable bound to an uncertain field is
relevant if some selection in the plan constrains that field's column
(any tuple's membership can flip when the field changes).
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from repro.db.ra.ast import PlanNode, Select
from repro.errors import InferenceError
from repro.fg.variables import FieldVariable, HiddenVariable
from repro.mcmc.proposal import Proposal, ProposalDistribution

__all__ = ["MixtureProposer", "relevant_variables"]


class MixtureProposer(ProposalDistribution):
    """With probability ``focus`` propose from ``targeted``, else from
    ``fallback``.

    Both components must be symmetric proposers over fixed variable
    sets (e.g. :class:`~repro.mcmc.proposal.UniformLabelProposer`); the
    mixture probability is constant, so overall proposal probabilities
    are state-independent and the kernel stays symmetric.
    """

    def __init__(
        self,
        targeted: ProposalDistribution,
        fallback: ProposalDistribution,
        focus: float = 0.8,
    ):
        if not 0.0 <= focus <= 1.0:
            raise InferenceError("focus must be a probability")
        self.targeted = targeted
        self.fallback = fallback
        self.focus = focus

    def propose(self, rng: random.Random) -> Proposal:
        if rng.random() < self.focus:
            return self.targeted.propose(rng)
        return self.fallback.propose(rng)


def _constrained_columns(plan: PlanNode) -> set[str]:
    """Lower-cased base column names appearing in any selection or join
    predicate of ``plan``."""
    columns: set[str] = set()

    def from_expr(expr) -> None:
        for col in expr.columns():
            name = col.name.lower()
            columns.add(name.rsplit(".", 1)[-1])

    def visit(node: PlanNode) -> None:
        if isinstance(node, Select):
            from_expr(node.predicate)
        condition = getattr(node, "condition", None)
        if condition is not None:
            from_expr(condition)
        for child in node.children():
            visit(child)

    visit(plan)
    return columns


def relevant_variables(
    plan: PlanNode,
    variables: Sequence[HiddenVariable],
    extra_filter: Callable[[HiddenVariable], bool] | None = None,
) -> List[HiddenVariable]:
    """Variables whose field is constrained by ``plan``'s predicates.

    For field-bound variables the attribute name is matched against the
    columns referenced by selections/join conditions.  ``extra_filter``
    can narrow further with domain knowledge (e.g. only tokens of
    documents mentioning a query constant).  Falls back to all
    variables when the analysis finds nothing (a safe default).
    """
    constrained = _constrained_columns(plan)
    relevant = [
        variable
        for variable in variables
        if isinstance(variable, FieldVariable)
        and variable.attr.lower() in constrained
        and (extra_filter is None or extra_filter(variable))
    ]
    return relevant if relevant else list(variables)
