"""Query-targeted proposal distributions (paper §4.1, future work).

§4.1: *"Another interesting scientific question is how to inject query
specific knowledge directly into the proposal distribution.  For
example, a query might target an isolated subset of the database, then
the proposal distribution only has to sample this subset"* — suggested
sources: domain experts, graph/query structure analysis, or learning.

:class:`MixtureProposer` implements the structural variant: a biased
mixture between a proposer over the query-relevant variables and a
global proposer.  Because both components draw the variable and the new
value from *fixed* sets (state-independent), the mixture kernel is
symmetric and needs no Hastings correction; the global component keeps
the chain ergodic over the full state space.

:func:`relevant_variables` extracts the query-relevant variable subset
by analysing plan predicates: a variable bound to an uncertain field is
relevant if some selection in the plan constrains that field's column
(any tuple's membership can flip when the field changes).

:func:`plan_restriction` goes further for models that declare
factor-closed variable groups: it proves (conservatively) which groups
can ever contribute an answer row, using only the *deterministic*
predicates of the plan — conjuncts over columns MCMC never rewrites.
The session uses the result to build a restricted proposer
(:class:`MixtureProposer` with ``focus=1.0``) so sampling touches only
the query-relevant subgraph, while untouched groups keep their initial
world values.  Because groups are factor-closed (mutually independent
components), freezing irrelevant groups is *exact* for any query whose
answer provably depends on the relevant groups alone — which is
precisely what the analysis certifies before pruning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.db.ra.ast import (
    AggLookup,
    And,
    ColumnRef,
    CrossProduct,
    Distinct,
    Expr,
    GroupAggregate,
    Join,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    Select,
    UnionAll,
)
from repro.errors import InferenceError
from repro.fg.variables import FieldVariable, HiddenVariable
from repro.mcmc.proposal import Proposal, ProposalDistribution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (db ↛ mcmc)
    from repro.db.database import Database

__all__ = [
    "MixtureProposer",
    "PlanRestriction",
    "plan_restriction",
    "relevant_variables",
]


class MixtureProposer(ProposalDistribution):
    """With probability ``focus`` propose from ``targeted``, else from
    ``fallback``.

    Both components must be symmetric proposers over fixed variable
    sets (e.g. :class:`~repro.mcmc.proposal.UniformLabelProposer`); the
    mixture probability is constant, so overall proposal probabilities
    are state-independent and the kernel stays symmetric.
    """

    def __init__(
        self,
        targeted: ProposalDistribution,
        fallback: ProposalDistribution,
        focus: float = 0.8,
    ):
        if not 0.0 <= focus <= 1.0:
            raise InferenceError("focus must be a probability")
        self.targeted = targeted
        self.fallback = fallback
        self.focus = focus

    def propose(self, rng: random.Random) -> Proposal:
        if rng.random() < self.focus:
            return self.targeted.propose(rng)
        return self.fallback.propose(rng)


def _constrained_columns(plan: PlanNode) -> set[str]:
    """Lower-cased base column names appearing in any selection or join
    predicate of ``plan``."""
    columns: set[str] = set()

    def from_expr(expr) -> None:
        for col in expr.columns():
            name = col.name.lower()
            columns.add(name.rsplit(".", 1)[-1])

    def visit(node: PlanNode) -> None:
        if isinstance(node, Select):
            from_expr(node.predicate)
        condition = getattr(node, "condition", None)
        if condition is not None:
            from_expr(condition)
        for child in node.children():
            visit(child)

    visit(plan)
    return columns


def relevant_variables(
    plan: PlanNode,
    variables: Sequence[HiddenVariable],
    extra_filter: Callable[[HiddenVariable], bool] | None = None,
) -> List[HiddenVariable]:
    """Variables whose field is constrained by ``plan``'s predicates.

    For field-bound variables the attribute name is matched against the
    columns referenced by selections/join conditions.  ``extra_filter``
    can narrow further with domain knowledge (e.g. only tokens of
    documents mentioning a query constant).  Falls back to all
    variables when the analysis finds nothing (a safe default).
    """
    constrained = _constrained_columns(plan)
    relevant = [
        variable
        for variable in variables
        if isinstance(variable, FieldVariable)
        and variable.attr.lower() in constrained
        and (extra_filter is None or extra_filter(variable))
    ]
    return relevant if relevant else list(variables)


# ----------------------------------------------------------------------
# Factor-graph pruning (planner composition)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanRestriction:
    """A proved restriction of sampling to query-relevant groups.

    ``variables`` is the union of the relevant groups' hidden
    variables (in deterministic group order); ``fraction`` is the
    share of groups kept, which the session uses to scale the thinning
    interval so per-relevant-variable sampling effort is preserved.
    """

    variables: Tuple[HiddenVariable, ...]
    groups: FrozenSet[Any]
    total_groups: int

    @property
    def fraction(self) -> float:
        return len(self.groups) / self.total_groups if self.total_groups else 1.0


class _Unprunable(Exception):
    """The analysis cannot certify a sound restriction; don't prune."""


def plan_restriction(
    plan: PlanNode, model: Any, db: "Database"
) -> Optional[PlanRestriction]:
    """The query-relevant group restriction for ``plan``, or ``None``.

    Requirements on ``model`` (all optional — any miss returns
    ``None``): ``tables`` naming exactly one uncertain table,
    ``variables`` of :class:`~repro.fg.variables.FieldVariable` over
    that table, ``groups`` mapping a group id to its factor-closed
    variable list, and ``group_column`` naming the stored column that
    carries the group id (e.g. ``DOC_ID`` for the NER skip-chain
    model, whose factors never cross documents).

    The analysis walks the plan bottom-up.  A scan of the uncertain
    table filtered by *deterministic* conjuncts (no uncertain column
    referenced) can only emit rows of the groups passing that filter —
    in **every** possible world, because MCMC rewrites uncertain
    columns only.  Joins between uncertain scans must equate the group
    column (else group provenance mixes and the analysis bails);
    branches of a ``UNION ALL`` union their groups.  The result is
    ``None`` when nothing can be proved, when every group stays
    relevant, or when no group survives (an empty certified answer is
    not worth a restricted chain).
    """
    tables = getattr(model, "tables", None)
    groups = getattr(model, "groups", None)
    group_column = getattr(model, "group_column", None)
    variables = getattr(model, "variables", None)
    if not tables or len(tables) != 1 or not groups or not group_column:
        return None
    if not variables:
        return None
    table = str(tables[0]).lower()
    if not all(
        isinstance(v, FieldVariable) and v.table.lower() == table
        for v in variables
    ):
        return None
    uncertain = {v.attr.lower() for v in variables}
    if str(group_column).lower() in uncertain:
        return None  # the group id itself must be deterministic
    universe: FrozenSet[Any] = frozenset(groups.keys())
    if not universe:
        return None
    try:
        scan_count, relevant = _relevant_groups(
            plan, table, uncertain, str(group_column), db, universe
        )
    except _Unprunable:
        return None
    if scan_count == 0 or relevant is None or universe <= relevant:
        return None
    kept = sorted(relevant & universe, key=repr)
    picked: List[HiddenVariable] = []
    for group in kept:
        picked.extend(groups[group])
    if not picked:
        return None
    return PlanRestriction(tuple(picked), frozenset(kept), len(universe))


def _relevant_groups(
    node: PlanNode,
    table: str,
    uncertain: set,
    group_column: str,
    db: "Database",
    universe: FrozenSet[Any],
) -> Tuple[int, Optional[FrozenSet[Any]]]:
    """``(uncertain_scan_count, groups)`` for the subtree at ``node``.

    ``groups=None`` means "no deterministic filter found" (the
    universe); raises :class:`_Unprunable` when group provenance
    cannot be tracked through the subtree.
    """
    if isinstance(node, Scan):
        if node.table_name.lower() == table:
            return 1, None
        return 0, None

    if isinstance(node, Select):
        child = node.child
        if isinstance(child, Scan) and child.table_name.lower() == table:
            return 1, _scan_groups(
                child, node.predicate, uncertain, group_column, db
            )
        # A filter above a non-scan subtree is ignored: conservative
        # (keeps a superset of the truly relevant groups).
        return _relevant_groups(
            child, table, uncertain, group_column, db, universe
        )

    if isinstance(node, (Project, Distinct, GroupAggregate, OrderBy, Limit)):
        return _relevant_groups(
            node.children()[0], table, uncertain, group_column, db, universe
        )

    if isinstance(node, Join):
        left = _relevant_groups(
            node.left, table, uncertain, group_column, db, universe
        )
        right = _relevant_groups(
            node.right, table, uncertain, group_column, db, universe
        )
        if left[0] and right[0]:
            if not _joins_on_group(node, group_column):
                raise _Unprunable
            return left[0] + right[0], _intersect(left[1], right[1])
        return left[0] + right[0], left[1] if left[0] else right[1]

    if isinstance(node, CrossProduct):
        left = _relevant_groups(
            node.left, table, uncertain, group_column, db, universe
        )
        right = _relevant_groups(
            node.right, table, uncertain, group_column, db, universe
        )
        if left[0] and right[0]:
            raise _Unprunable  # unconstrained pairing mixes groups
        return left[0] + right[0], left[1] if left[0] else right[1]

    if isinstance(node, UnionAll):
        left = _relevant_groups(
            node.left, table, uncertain, group_column, db, universe
        )
        right = _relevant_groups(
            node.right, table, uncertain, group_column, db, universe
        )
        if left[0] and right[0]:
            if left[1] is None or right[1] is None:
                return left[0] + right[0], None
            return left[0] + right[0], left[1] | right[1]
        return left[0] + right[0], left[1] if left[0] else right[1]

    if isinstance(node, AggLookup):
        outer = _relevant_groups(
            node.outer, table, uncertain, group_column, db, universe
        )
        inner = _relevant_groups(
            node.inner, table, uncertain, group_column, db, universe
        )
        if outer[0] and inner[0]:
            # The correlation key is arbitrary; proving group
            # provenance across the lookup is out of scope.
            raise _Unprunable
        return outer[0] + inner[0], outer[1] if outer[0] else inner[1]

    raise _Unprunable


def _scan_groups(
    scan: Scan,
    predicate: Expr,
    uncertain: set,
    group_column: str,
    db: "Database",
) -> Optional[FrozenSet[Any]]:
    """Group ids whose rows can pass ``predicate``'s deterministic
    conjuncts (``None`` when there are none to exploit)."""
    deterministic = [
        conjunct
        for conjunct in _conjuncts(predicate)
        if not any(
            col.name.rsplit(".", 1)[-1].lower() in uncertain
            for col in conjunct.columns()
        )
    ]
    if not deterministic:
        return None
    table = db.table(scan.table_name)
    position = table.schema.position(group_column)
    # Scan schemas mirror the stored schema column-for-column (alias
    # prefixes change names, not positions), so predicates bound
    # against the scan schema evaluate directly over stored rows.
    compiled = [conjunct.bind(scan.schema) for conjunct in deterministic]
    passing = set()
    for row in table.rows():
        if all(fn(row) for fn in compiled):
            passing.add(row[position])
    return frozenset(passing)


def _conjuncts(expr: Expr) -> List[Expr]:
    if isinstance(expr, And):
        out: List[Expr] = []
        for term in expr.terms:
            out.extend(_conjuncts(term))
        return out
    return [expr]


def _joins_on_group(join: Join, group_column: str) -> bool:
    wanted = group_column.lower()

    def base(col: ColumnRef) -> str:
        return col.name.rsplit(".", 1)[-1].lower()

    return any(
        base(left) == wanted and base(right) == wanted
        for left, right in join.equi_pairs
    )


def _intersect(
    a: Optional[FrozenSet[Any]], b: Optional[FrozenSet[Any]]
) -> Optional[FrozenSet[Any]]:
    if a is None:
        return b
    if b is None:
        return a
    return a & b
