"""Gibbs sampling — a rejection-free alternative kernel.

Not used by the paper's experiments (which use Metropolis-Hastings
random walks), but a natural extension: resampling a variable from its
exact local conditional often mixes faster per step at the cost of
scoring every domain value.  Exposed for ablations.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.errors import InferenceError
from repro.fg.graph import FactorGraph
from repro.fg.variables import FieldVariable, HiddenVariable
from repro.rng import make_rng

__all__ = ["GibbsSampler"]


class GibbsSampler:
    """Systematic-scan or random-scan Gibbs over hidden variables."""

    def __init__(
        self,
        graph: FactorGraph,
        variables: Sequence[HiddenVariable] | None = None,
        seed: int | None = None,
        rng: random.Random | None = None,
        random_scan: bool = True,
    ):
        self.graph = graph
        self.variables: List[HiddenVariable] = list(
            variables if variables is not None else graph.variables
        )
        if not self.variables:
            raise InferenceError("Gibbs sampler needs at least one variable")
        self.rng = rng if rng is not None else make_rng(seed)
        self.random_scan = random_scan
        self._scan_position = 0
        self.steps = 0

    def conditional(self, variable: HiddenVariable) -> List[float]:
        """The exact conditional distribution of ``variable`` given the
        rest, in domain order.

        Scoring goes through
        :meth:`repro.fg.graph.FactorGraph.local_conditional_scores`, so
        static graphs get the vectorized blanket-cached path (all K
        candidate values amortize one adjacency walk) while dynamic
        graphs re-instantiate per candidate exactly as before — the
        score lists are bit-identical either way.
        """
        scores = self.graph.local_conditional_scores(variable)
        peak = max(scores)
        if peak == float("-inf"):
            raise InferenceError(
                f"all values of {variable.name!r} have zero probability"
            )
        weights = [math.exp(s - peak) for s in scores]
        total = sum(weights)
        return [w / total for w in weights]

    def step(self) -> HiddenVariable:
        """Resample one variable from its conditional; returns it."""
        if self.random_scan:
            variable = self.variables[self.rng.randrange(len(self.variables))]
        else:
            variable = self.variables[self._scan_position]
            self._scan_position = (self._scan_position + 1) % len(self.variables)
        probabilities = self.conditional(variable)
        pick = self.rng.random()
        cumulative = 0.0
        chosen = variable.domain.values[-1]
        for value, probability in zip(variable.domain, probabilities):
            cumulative += probability
            if pick < cumulative:
                chosen = value
                break
        if chosen != variable.value:
            variable.set_value(chosen)
            if isinstance(variable, FieldVariable):
                variable.flush()
        self.steps += 1
        return variable

    def run(self, num_steps: int) -> None:
        for _ in range(num_steps):
            self.step()
