"""Proposal distributions for Metropolis-Hastings.

A proposal hypothesizes a *local* modification to the current possible
world: a handful of variables and their new values, plus the log
probabilities of proposing the move and its reverse (needed for the
Hastings correction).  Proposers are constraint-preserving by
construction (paper §3.4): they only generate worlds with positive
probability, so deterministic constraint factors never need to be
evaluated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Sequence

from repro.errors import InferenceError
from repro.fg.variables import HiddenVariable

__all__ = ["Proposal", "ProposalDistribution", "UniformLabelProposer", "BlockProposer"]


@dataclass(slots=True)
class Proposal:
    """One hypothesized world modification.

    ``changes`` maps variables to proposed values (which may equal the
    current value — a self-transition).  ``log_forward`` is
    ``log q(w'|w)`` and ``log_backward`` is ``log q(w|w')``; symmetric
    proposers leave both at 0 since only the difference matters.

    Slotted: one is allocated per walk step, so the ``__dict__`` per
    instance is measurable at 40k-token benchmark scale.
    """

    changes: Dict[HiddenVariable, Any]
    log_forward: float = 0.0
    log_backward: float = 0.0

    def is_noop(self) -> bool:
        return all(v.value == new for v, new in self.changes.items())


class ProposalDistribution:
    """Base class: generates proposals given an RNG."""

    def propose(self, rng: random.Random) -> Proposal:
        raise NotImplementedError


class UniformLabelProposer(ProposalDistribution):
    """The paper's NER jump function (§5.1).

    Selects one hidden variable uniformly at random from the active set
    and resamples its value uniformly from its domain.  Symmetric:
    ``q(w'|w) = q(w|w')`` whenever both moves touch the same variable,
    so the Hastings correction vanishes.
    """

    def __init__(self, variables: Sequence[HiddenVariable]):
        if not variables:
            raise InferenceError("proposer needs a non-empty variable set")
        self.set_variables(variables)

    @property
    def variables(self) -> list[HiddenVariable]:
        return self._variables

    def set_variables(self, variables: Sequence[HiddenVariable]) -> None:
        if not variables:
            raise InferenceError("proposer needs a non-empty variable set")
        self._variables = list(variables)
        # Parallel list of domain value tuples: propose() runs once per
        # walk step, and the two property hops per draw are measurable
        # at benchmark scale.
        self._domains = [v.domain.values for v in self._variables]

    def propose(self, rng: random.Random) -> Proposal:
        # rng._randbelow(n) is exactly what randrange(n) reduces to for
        # a positive int bound — same draw, same stream, minus the
        # argument-normalization wrapper on the hottest call site.
        draw = rng._randbelow
        i = draw(len(self._variables))
        values = self._domains[i]
        return Proposal({self._variables[i]: values[draw(len(values))]})


class BlockProposer(ProposalDistribution):
    """Resamples a small block of variables jointly.

    Useful when single-variable moves mix slowly (e.g. flipping a B-
    label and its continuation I-label together).  Uniform over blocks
    and over joint values, hence symmetric.
    """

    def __init__(self, blocks: Sequence[Sequence[HiddenVariable]]):
        if not blocks:
            raise InferenceError("block proposer needs at least one block")
        self._blocks = [list(b) for b in blocks]
        for block in self._blocks:
            if not block:
                raise InferenceError("blocks must be non-empty")

    def propose(self, rng: random.Random) -> Proposal:
        block = self._blocks[rng.randrange(len(self._blocks))]
        changes = {
            variable: variable.domain.values[rng.randrange(len(variable.domain))]
            for variable in block
        }
        return Proposal(changes)
