"""Proposal scheduling: the paper's document-batch regime.

§5.1: *"This process is repeated for 2000 proposals before L is changed
by loading a new batch of variables from the database: up to five
documents worth of variables may be selected (documents are selected
uniformly at random from the database)."*

:class:`RotatingBatchProposer` wraps a base proposer, restricting it to
the variables of a small random batch of groups (documents) and
re-drawing the batch every ``proposals_per_batch`` proposals.  Keeping
the active set small improves locality — the in-memory variable set
stays bounded regardless of database size.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Sequence

from repro.errors import InferenceError
from repro.fg.variables import HiddenVariable
from repro.mcmc.proposal import Proposal, ProposalDistribution, UniformLabelProposer

__all__ = ["RotatingBatchProposer"]


class RotatingBatchProposer(ProposalDistribution):
    """Uniform label proposals over a rotating batch of variable groups.

    Parameters
    ----------
    groups:
        Mapping from group id (e.g. ``DOC_ID``) to that group's hidden
        variables.
    batch_size:
        Number of groups active at once (the paper uses up to 5).
    proposals_per_batch:
        Proposals drawn before rotating to a fresh batch (paper: 2000).
    """

    def __init__(
        self,
        groups: Dict[Hashable, Sequence[HiddenVariable]],
        batch_size: int = 5,
        proposals_per_batch: int = 2000,
    ):
        if batch_size < 1 or proposals_per_batch < 1:
            raise InferenceError("batch_size and proposals_per_batch must be >= 1")
        self.batch_size = batch_size
        self.proposals_per_batch = proposals_per_batch
        self.rotations = 0
        self._inner: UniformLabelProposer | None = None
        self._since_rotation = 0
        self.set_groups(groups)

    @property
    def active_variables(self) -> list[HiddenVariable]:
        return self._inner.variables if self._inner is not None else []

    def set_groups(self, groups: Dict[Hashable, Sequence[HiddenVariable]]) -> None:
        """Replace the group map in place (live updates: documents gain
        or lose tokens, appear, or vanish).  The active batch is
        discarded — the next proposal rotates onto the fresh map, so no
        stale variable can be proposed.  Also the constructor's group
        normalization, so the two cannot drift."""
        if not groups:
            raise InferenceError("need at least one variable group")
        replacement = {g: list(vs) for g, vs in groups.items()}
        for g, vs in replacement.items():
            if not vs:
                raise InferenceError(f"group {g!r} has no variables")
        self._group_ids: List[Hashable] = sorted(replacement, key=repr)
        self._groups = replacement
        self._inner = None
        self._since_rotation = 0

    def _rotate(self, rng: random.Random) -> None:
        count = min(self.batch_size, len(self._group_ids))
        chosen = rng.sample(self._group_ids, count)
        variables: list[HiddenVariable] = []
        for group in chosen:
            variables.extend(self._groups[group])
        if self._inner is None:
            self._inner = UniformLabelProposer(variables)
        else:
            self._inner.set_variables(variables)
        self._since_rotation = 0
        self.rotations += 1

    def propose(self, rng: random.Random) -> Proposal:
        if self._inner is None or self._since_rotation >= self.proposals_per_batch:
            self._rotate(rng)
        self._since_rotation += 1
        return self._inner.propose(rng)
