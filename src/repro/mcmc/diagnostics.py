"""MCMC convergence diagnostics.

Beyond the paper's loss-versus-time plots, the library ships standard
diagnostics so users can judge mixing quantitatively:

* :func:`autocorrelation` / :func:`effective_sample_size` for a single
  scalar trace;
* :func:`gelman_rubin` (potential scale reduction, R̂) across parallel
  chains — directly relevant to the parallelization experiment (§5.4).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import InferenceError

__all__ = ["autocorrelation", "effective_sample_size", "gelman_rubin"]


def autocorrelation(trace: Sequence[float], lag: int) -> float:
    """Sample autocorrelation of ``trace`` at ``lag``."""
    n = len(trace)
    if lag < 0 or lag >= n:
        raise InferenceError(f"lag {lag} out of range for trace of length {n}")
    mean = sum(trace) / n
    centered = [x - mean for x in trace]
    denominator = sum(c * c for c in centered)
    if denominator == 0.0:
        return 1.0 if lag == 0 else 0.0
    numerator = sum(centered[i] * centered[i + lag] for i in range(n - lag))
    return numerator / denominator


def effective_sample_size(trace: Sequence[float], max_lag: int | None = None) -> float:
    """Initial-positive-sequence estimator of the effective sample size.

    Sums autocorrelations until the first non-positive value (Geyer's
    truncation), then returns ``n / (1 + 2 * sum_rho)``.
    """
    n = len(trace)
    if n < 2:
        return float(n)
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    rho_sum = 0.0
    for lag in range(1, max_lag + 1):
        rho = autocorrelation(trace, lag)
        if rho <= 0.0:
            break
        rho_sum += rho
    return n / (1.0 + 2.0 * rho_sum)


def gelman_rubin(chains: List[Sequence[float]]) -> float:
    """Potential scale reduction factor R̂ over ≥2 equal-length chains.

    Values near 1 indicate the chains have mixed; values well above 1
    mean more samples (or better jumps) are needed.
    """
    m = len(chains)
    if m < 2:
        raise InferenceError("Gelman-Rubin needs at least two chains")
    n = len(chains[0])
    if n < 2 or any(len(c) != n for c in chains):
        raise InferenceError("chains must share a length of at least two")
    means = [sum(c) / n for c in chains]
    grand = sum(means) / m
    b = n / (m - 1) * sum((mu - grand) ** 2 for mu in means)
    w = sum(
        sum((x - mu) ** 2 for x in chain) / (n - 1)
        for chain, mu in zip(chains, means)
    ) / m
    if w == 0.0:
        return 1.0
    var_plus = (n - 1) / n * w + b / n
    return math.sqrt(var_plus / w)
