"""MCMC convergence diagnostics.

Beyond the paper's loss-versus-time plots, the library ships standard
diagnostics so users can judge mixing quantitatively:

* :func:`autocorrelation` / :func:`effective_sample_size` for a single
  scalar trace;
* :func:`gelman_rubin` (potential scale reduction, R̂) across parallel
  chains — directly relevant to the parallelization experiment (§5.4);
* :func:`chi_square_gof` — Pearson goodness-of-fit of empirical sample
  counts against an exact reference distribution (the statistical
  correctness tests compare kernels against
  :meth:`~repro.fg.graph.FactorGraph.exact_distribution` this way).

Everything is standard library only (the chi-square tail probability
comes from the regularized incomplete gamma function, computed here),
matching the package's no-dependency design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Mapping, Sequence

from repro.errors import InferenceError

__all__ = [
    "GofResult",
    "autocorrelation",
    "chi_square_gof",
    "effective_sample_size",
    "gelman_rubin",
]


def autocorrelation(trace: Sequence[float], lag: int) -> float:
    """Sample autocorrelation of ``trace`` at ``lag``."""
    n = len(trace)
    if lag < 0 or lag >= n:
        raise InferenceError(f"lag {lag} out of range for trace of length {n}")
    mean = sum(trace) / n
    centered = [x - mean for x in trace]
    denominator = sum(c * c for c in centered)
    if denominator == 0.0:
        return 1.0 if lag == 0 else 0.0
    numerator = sum(centered[i] * centered[i + lag] for i in range(n - lag))
    return numerator / denominator


def effective_sample_size(trace: Sequence[float], max_lag: int | None = None) -> float:
    """Initial-positive-sequence estimator of the effective sample size.

    Sums autocorrelations until the first non-positive value (Geyer's
    truncation), then returns ``n / (1 + 2 * sum_rho)``.
    """
    n = len(trace)
    if n < 2:
        return float(n)
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    rho_sum = 0.0
    for lag in range(1, max_lag + 1):
        rho = autocorrelation(trace, lag)
        if rho <= 0.0:
            break
        rho_sum += rho
    return n / (1.0 + 2.0 * rho_sum)


def _regularized_gamma_q(a: float, x: float) -> float:
    """``Q(a, x) = Γ(a, x) / Γ(a)`` — the upper regularized incomplete
    gamma function, via the classic series / continued-fraction split
    (series for ``x < a + 1``, modified-Lentz continued fraction
    otherwise).  ``Q(df/2, x/2)`` is the chi-square survival function.
    """
    if a <= 0.0:
        raise InferenceError(f"gamma parameter must be positive, got {a}")
    if x < 0.0:
        raise InferenceError(f"gamma argument must be non-negative, got {x}")
    if x == 0.0:
        return 1.0
    log_prefix = -x + a * math.log(x) - math.lgamma(a)
    if x < a + 1.0:
        # Series for P(a, x); Q = 1 - P.
        term = 1.0 / a
        total = term
        denominator = a
        for _ in range(1000):
            denominator += 1.0
            term *= x / denominator
            total += term
            if abs(term) < abs(total) * 1e-16:
                break
        return max(0.0, 1.0 - total * math.exp(log_prefix))
    # Continued fraction for Q(a, x) (modified Lentz).
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b if b != 0.0 else 1.0 / tiny
    h = d
    for i in range(1, 1000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-16:
            break
    return min(1.0, max(0.0, h * math.exp(log_prefix)))


@dataclass(frozen=True)
class GofResult:
    """Outcome of a Pearson chi-square goodness-of-fit test."""

    statistic: float
    df: int
    p_value: float

    def rejects(self, alpha: float = 0.01) -> bool:
        """Whether the fit is rejected at significance ``alpha``."""
        return self.p_value < alpha


def chi_square_gof(
    observed: Mapping[Any, int],
    expected: Mapping[Any, float],
    min_expected: float = 5.0,
) -> GofResult:
    """Pearson chi-square test of observed category counts against an
    exact probability distribution.

    ``observed`` maps categories to sample counts, ``expected`` to
    reference probabilities (must sum to ~1 and cover every observed
    category).  Categories whose expected count falls below
    ``min_expected`` are pooled into one bin — the standard validity
    fix for sparse tails.  Degrees of freedom are ``#bins - 1``.
    """
    total = sum(observed.values())
    if total <= 0:
        raise InferenceError("chi-square needs at least one observation")
    if any(count < 0 for count in observed.values()):
        raise InferenceError("observed counts must be non-negative")
    mass = sum(expected.values())
    if not math.isclose(mass, 1.0, rel_tol=1e-6, abs_tol=1e-6):
        raise InferenceError(
            f"expected probabilities must sum to 1 (got {mass:.6f})"
        )
    stray = [c for c in observed if c not in expected and observed[c] > 0]
    if stray:
        raise InferenceError(
            f"observed categories missing from the expected distribution: "
            f"{stray[:5]!r}"
        )
    # Samples in a category the reference assigns probability 0 are an
    # outright contradiction (true Pearson statistic is infinite); the
    # pooling below must not let them vanish into a zero-mass bin.
    impossible = [
        c for c, count in observed.items() if count > 0 and expected[c] <= 0.0
    ]
    if impossible:
        bins = sum(1 for p in expected.values() if p > 0.0) + 1
        return GofResult(math.inf, max(1, bins - 1), 0.0)
    main_stat = 0.0
    pooled_observed = 0.0
    pooled_expected = 0.0
    bins = 0
    for category, probability in expected.items():
        expected_count = probability * total
        observed_count = observed.get(category, 0)
        if expected_count < min_expected:
            pooled_observed += observed_count
            pooled_expected += expected_count
            continue
        bins += 1
        main_stat += (observed_count - expected_count) ** 2 / expected_count
    if pooled_expected > 0.0:
        bins += 1
        main_stat += (pooled_observed - pooled_expected) ** 2 / pooled_expected
    if bins < 2:
        raise InferenceError(
            "chi-square needs at least two bins with sufficient expected "
            "mass; lower min_expected or collect more samples"
        )
    df = bins - 1
    return GofResult(main_stat, df, _regularized_gamma_q(df / 2.0, main_stat / 2.0))


def gelman_rubin(chains: List[Sequence[float]]) -> float:
    """Potential scale reduction factor R̂ over ≥2 equal-length chains.

    Values near 1 indicate the chains have mixed; values well above 1
    mean more samples (or better jumps) are needed.
    """
    m = len(chains)
    if m < 2:
        raise InferenceError("Gelman-Rubin needs at least two chains")
    n = len(chains[0])
    if n < 2 or any(len(c) != n for c in chains):
        raise InferenceError("chains must share a length of at least two")
    means = [sum(c) / n for c in chains]
    grand = sum(means) / m
    b = n / (m - 1) * sum((mu - grand) ** 2 for mu in means)
    w = sum(
        sum((x - mu) ** 2 for x in chain) / (n - 1)
        for chain, mu in zip(chains, means)
    ) / m
    if w == 0.0:
        return 1.0
    var_plus = (n - 1) / n * w + b / n
    return math.sqrt(var_plus / w)
