"""Adaptive thinning (paper §4.1, future work).

§4.1: *"faced with the fact that each sample is non-trivial to compute
(requires executing a query), we must balance the dependency of the
samples with the expected costs of the queries.  Adaptively adjusting k
to respond to these various issues is one type of optimization that may
be applied."*

:class:`AdaptiveChain` implements that optimization: it measures the
wall-clock cost of the walk-steps and of each sample's query work, and
re-tunes ``k`` so that query evaluation consumes a target fraction of
total time.  Cheap queries (incrementally maintained views) get small
``k`` — frequent, correlated samples are fine when nearly free; an
expensive query (naive evaluation over a large world) pushes ``k`` up
so the chain de-correlates between costly evaluations.
"""

from __future__ import annotations

import time

from repro.errors import InferenceError
from repro.mcmc.chain import MarkovChain
from repro.mcmc.metropolis import MetropolisHastings

__all__ = ["AdaptiveChain"]


class AdaptiveChain(MarkovChain):
    """A Markov chain that re-tunes its thinning interval online.

    Parameters
    ----------
    kernel:
        The MH kernel to drive.
    initial_k:
        Starting thinning interval.
    query_cost_target:
        Desired fraction of wall-clock spent on query evaluation
        (0 < target < 1).  With ``t_q`` the measured per-sample query
        time and ``t_s`` the per-step time, the tuned interval is
        ``k = t_q (1 − target) / (t_s · target)``, clamped to
        ``[min_k, max_k]``.
    """

    def __init__(
        self,
        kernel: MetropolisHastings,
        initial_k: int = 100,
        query_cost_target: float = 0.5,
        min_k: int = 10,
        max_k: int = 100_000,
        smoothing: float = 0.3,
    ):
        super().__init__(kernel, initial_k)
        if not 0.0 < query_cost_target < 1.0:
            raise InferenceError("query_cost_target must be in (0, 1)")
        if not 0 < min_k <= max_k:
            raise InferenceError("need 0 < min_k <= max_k")
        self.query_cost_target = query_cost_target
        self.min_k = min_k
        self.max_k = max_k
        self.smoothing = smoothing
        self._step_seconds: float | None = None
        self._query_seconds: float | None = None
        self._sample_started: float | None = None
        self.retunes = 0

    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Run ``k`` steps, timing them; then start the query clock.

        The time between :meth:`advance` returning and the next call is
        attributed to query evaluation (that is exactly what evaluators
        do between samples).
        """
        now = time.perf_counter()
        if self._sample_started is not None:
            observed = now - self._sample_started
            self._query_seconds = self._blend(self._query_seconds, observed)
            self._retune()
        started = now
        self.kernel.run(self.steps_per_sample)
        finished = time.perf_counter()
        per_step = (finished - started) / self.steps_per_sample
        self._step_seconds = self._blend(self._step_seconds, per_step)
        self._sample_started = finished

    def _blend(self, previous: float | None, observed: float) -> float:
        if previous is None:
            return observed
        return (1 - self.smoothing) * previous + self.smoothing * observed

    def _retune(self) -> None:
        if not self._step_seconds or self._query_seconds is None:
            return
        target = self.query_cost_target
        ideal = self._query_seconds * (1 - target) / (self._step_seconds * target)
        new_k = max(self.min_k, min(self.max_k, int(round(ideal)) or self.min_k))
        if new_k != self.steps_per_sample:
            self.steps_per_sample = new_k
            self.retunes += 1

    # ------------------------------------------------------------------
    @property
    def measured_step_seconds(self) -> float | None:
        return self._step_seconds

    @property
    def measured_query_seconds(self) -> float | None:
        return self._query_seconds
