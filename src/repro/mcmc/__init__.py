"""MCMC inference over the single stored possible world.

Metropolis-Hastings (Algorithm 2 of the paper) with local delta
scoring, proposal distributions including the paper's uniform label
jump and document-batch schedule, a Gibbs kernel for ablations,
clustering moves for entity resolution, and convergence diagnostics.
"""

from repro.mcmc.adaptive import AdaptiveChain
from repro.mcmc.chain import MarkovChain
from repro.mcmc.diagnostics import (
    GofResult,
    autocorrelation,
    chi_square_gof,
    effective_sample_size,
    gelman_rubin,
)
from repro.mcmc.gibbs import GibbsSampler
from repro.mcmc.metropolis import MetropolisHastings, MHStatistics, StepResult
from repro.mcmc.proposal import (
    BlockProposer,
    Proposal,
    ProposalDistribution,
    UniformLabelProposer,
)
from repro.mcmc.schedule import RotatingBatchProposer
from repro.mcmc.splitmerge import ClusterIndex
from repro.mcmc.targeted import MixtureProposer, relevant_variables

__all__ = [
    "AdaptiveChain",
    "BlockProposer",
    "ClusterIndex",
    "GibbsSampler",
    "MHStatistics",
    "MarkovChain",
    "MetropolisHastings",
    "MixtureProposer",
    "Proposal",
    "ProposalDistribution",
    "RotatingBatchProposer",
    "StepResult",
    "UniformLabelProposer",
    "autocorrelation",
    "effective_sample_size",
    "GofResult",
    "chi_square_gof",
    "gelman_rubin",
    "relevant_variables",
]
