"""The Metropolis-Hastings kernel (paper Algorithm 2).

One :meth:`MetropolisHastings.step`:

1. draw ``w' ~ q(.|w)`` from the proposal distribution;
2. score only the factors adjacent to the touched variables, before
   and after the change — the Appendix 9.2 cancellation makes this
   O(|touched|), independent of database size; structure-changing
   models score the union of both adjacent factor sets (see
   :meth:`repro.fg.graph.FactorGraph.score_delta`).  For static models
   the adjacent factor set comes from the graph's static adjacency
   cache (pooled instances, memoized scores), so a steady-state walk
   step allocates almost nothing;
3. accept with probability ``min(1, pi(w')q(w|w') / pi(w)q(w'|w))``;
4. on acceptance, flush changed :class:`~repro.fg.variables.FieldVariable`
   values through to the database, where attached delta recorders pick
   them up for view maintenance.

All arithmetic is in log space; the normalizer ``Z_X`` cancels.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict

from repro.fg.graph import FactorGraph
from repro.fg.variables import FieldVariable, HiddenVariable
from repro.mcmc.proposal import ProposalDistribution
from repro.rng import make_rng

__all__ = ["StepResult", "MHStatistics", "MetropolisHastings"]


@dataclass(slots=True)
class StepResult:
    """Outcome of one MH step (slotted: allocated every step)."""

    accepted: bool
    log_acceptance: float
    changed: Dict[HiddenVariable, Any]


@dataclass
class MHStatistics:
    """Running counters over the lifetime of a kernel.

    No-op self-transitions (proposals that change nothing) are always
    accepted, so they count into both ``accepted`` and ``noops``.
    :attr:`acceptance_rate` therefore over-states how often the chain
    *moves*; consumers tuning against the acceptance signal should read
    :attr:`effective_acceptance_rate`, which excludes no-ops from both
    numerator and denominator.
    """

    proposals: int = 0
    accepted: int = 0
    noops: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals accepted, self-transitions included."""
        if self.proposals == 0:
            return 0.0
        return self.accepted / self.proposals

    @property
    def effective_acceptance_rate(self) -> float:
        """Fraction of *world-changing* proposals accepted.

        Excludes no-op self-transitions, which inflate
        :attr:`acceptance_rate` without moving the chain.
        """
        moves = self.proposals - self.noops
        if moves == 0:
            return 0.0
        return (self.accepted - self.noops) / moves


class MetropolisHastings:
    """A random-walk MH sampler over a factor graph.

    Parameters
    ----------
    graph:
        The model; proposals are scored through its templates.
    proposer:
        The jump function ``q``.
    seed / rng:
        Either a seed (int) or an explicit :class:`random.Random`.
    temperature:
        Optional >0 scaling of the model score (1.0 = the paper's
        sampler; <1 sharpens toward the MAP world, useful for
        annealed decoding).
    """

    def __init__(
        self,
        graph: FactorGraph,
        proposer: ProposalDistribution,
        seed: int | None = None,
        rng: random.Random | None = None,
        temperature: float = 1.0,
    ):
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.graph = graph
        self.proposer = proposer
        self.rng = rng if rng is not None else make_rng(seed)
        self.temperature = temperature
        self.stats = MHStatistics()

    # ------------------------------------------------------------------
    def step(self) -> StepResult:
        """Execute one propose/accept/reject cycle."""
        proposal = self.proposer.propose(self.rng)
        stats = self.stats
        stats.proposals += 1
        changes = proposal.changes
        if len(changes) == 1:
            # Single-variable proposal (the overwhelmingly common case):
            # skip the filtering dict build entirely.  ``_value`` is the
            # storage behind the ``value`` property on every variable
            # kind; reading it directly skips one descriptor hop per
            # step.
            [(variable, value)] = changes.items()
            if variable._value == value:
                changes = {}
        else:
            changes = {
                variable: value
                for variable, value in changes.items()
                if variable._value != value
            }
        if not changes:
            # Self-transition: always accepted, nothing to write.
            stats.accepted += 1
            stats.noops += 1
            return StepResult(True, 0.0, {})

        # Score through the graph's what-if machinery: static models
        # instantiate the adjacent factor set once and score it under
        # both worlds; dynamic models (coref cluster membership) score
        # the union of the before/after adjacent sets so factors that
        # appear or vanish with the change contribute symmetrically.
        log_alpha = self.graph.score_delta(changes) / self.temperature
        log_alpha += proposal.log_backward - proposal.log_forward
        accepted = log_alpha >= 0 or math.log(self.rng.random()) < log_alpha

        if accepted:
            stats.accepted += 1
            for variable, value in changes.items():
                variable.set_value(value)
                if isinstance(variable, FieldVariable):
                    variable.flush()
            return StepResult(True, log_alpha, changes)

        return StepResult(False, log_alpha, {})

    def run(self, num_steps: int) -> MHStatistics:
        """Run ``num_steps`` (Algorithm 2's loop); returns statistics."""
        for _ in range(num_steps):
            self.step()
        return self.stats
