"""Chain driver: thinning and sample hooks.

§4.1: consecutive MH samples are highly dependent and collecting tuple
counts is expensive (it requires evaluating the query), so counts are
collected only every ``k`` steps ("thinning").  :class:`MarkovChain`
packages a kernel with a thinning interval and yields control to the
caller at every sample point; query evaluators hook in there.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import InferenceError
from repro.mcmc.metropolis import MetropolisHastings, MHStatistics

__all__ = ["MarkovChain"]


class MarkovChain:
    """A Metropolis-Hastings kernel plus a thinning interval ``k``."""

    def __init__(self, kernel: MetropolisHastings, steps_per_sample: int):
        if steps_per_sample < 1:
            raise InferenceError("steps_per_sample must be >= 1")
        self.kernel = kernel
        self.steps_per_sample = steps_per_sample

    @property
    def stats(self) -> MHStatistics:
        return self.kernel.stats

    @property
    def effective_acceptance_rate(self) -> float:
        """Acceptance rate over world-changing proposals only (no-op
        self-transitions excluded) — the mixing signal consumers such
        as schedule ablations should tune against, since no-ops inflate
        the raw :attr:`MHStatistics.acceptance_rate` without moving the
        chain."""
        return self.kernel.stats.effective_acceptance_rate

    def advance(self) -> None:
        """Run ``k`` MH walk-steps (the MetropolisHastings(w, k) call in
        Algorithms 1 and 3)."""
        self.kernel.run(self.steps_per_sample)

    def samples(self, num_samples: int) -> Iterator[int]:
        """Yield ``0 .. num_samples-1``, advancing ``k`` steps before
        each yield; the caller evaluates its query at each yield point."""
        for index in range(num_samples):
            self.advance()
            yield index

    def run(
        self,
        num_samples: int,
        on_sample: Callable[[int], None] | None = None,
    ) -> MHStatistics:
        """Drive the chain for ``num_samples`` thinned samples."""
        for index in self.samples(num_samples):
            if on_sample is not None:
                on_sample(index)
        return self.kernel.stats
