"""Clustering state and constraint-preserving cluster moves.

The entity-resolution model (paper Fig. 1, bottom row) clusters mention
variables into entities.  Transitivity is a deterministic constraint; a
cubic number of constraint factors is avoided by using proposers that
only generate valid clusterings (paper §3.4: the split-merge proposer
is constraint-preserving).

:class:`ClusterIndex` maintains the cluster→members map for variables
whose *value* is their cluster id, and provides the two moves the
coref application uses:

* **move** — relocate one mention to an existing cluster or to a fresh
  singleton (exact Hastings ratios are simple, see
  :mod:`repro.ie.coref.proposals`);
* **split / merge** — split a random cluster in two, or merge two
  clusters (the paper's example proposer).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Sequence, Set

from repro.errors import InferenceError
from repro.fg.variables import HiddenVariable

__all__ = ["ClusterIndex"]


class ClusterIndex:
    """Tracks which variables currently share each cluster id.

    The index is *derived* state: it mirrors the variables' current
    values and must be notified of accepted changes via
    :meth:`rebuild` or :meth:`apply_change`.
    """

    def __init__(self, variables: Sequence[HiddenVariable]):
        if not variables:
            raise InferenceError("cluster index needs at least one variable")
        self.variables: List[HiddenVariable] = list(variables)
        self._members: Dict[Hashable, Set[HiddenVariable]] = {}
        self.rebuild()

    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        self._members = {}
        for variable in self.variables:
            self._members.setdefault(variable.value, set()).add(variable)

    def apply_change(self, variable: HiddenVariable, old_value: Hashable) -> None:
        """Update the index after ``variable`` moved from ``old_value``
        to its current value."""
        members = self._members.get(old_value)
        if members is not None:
            members.discard(variable)
            if not members:
                del self._members[old_value]
        self._members.setdefault(variable.value, set()).add(variable)

    # ------------------------------------------------------------------
    def cluster_ids(self) -> List[Hashable]:
        return list(self._members)

    def members(self, cluster_id: Hashable) -> Set[HiddenVariable]:
        return self._members.get(cluster_id, set())

    def cluster_of(self, variable: HiddenVariable) -> Hashable:
        return variable.value

    def size(self, cluster_id: Hashable) -> int:
        return len(self._members.get(cluster_id, ()))

    def num_clusters(self) -> int:
        return len(self._members)

    def unused_id(self) -> Hashable:
        """A cluster id not currently in use (ids are domain values)."""
        domain = self.variables[0].domain
        for value in domain:
            if value not in self._members:
                return value
        raise InferenceError("no free cluster id available in the domain")

    def random_pair(
        self, rng: random.Random
    ) -> tuple[HiddenVariable, HiddenVariable]:
        """Two distinct variables, uniformly at random."""
        if len(self.variables) < 2:
            raise InferenceError("need at least two variables for pair moves")
        i = rng.randrange(len(self.variables))
        j = rng.randrange(len(self.variables) - 1)
        if j >= i:
            j += 1
        return self.variables[i], self.variables[j]

    def clustering(self) -> Dict[Hashable, frozenset]:
        """Snapshot: cluster id → frozen set of variable names."""
        return {
            cluster: frozenset(v.name for v in members)
            for cluster, members in self._members.items()
        }

    def partition(self) -> Set[frozenset]:
        """The clustering as a set of blocks (id-free, for comparing
        against gold partitions)."""
        return {
            frozenset(v.name for v in members)
            for members in self._members.values()
        }
