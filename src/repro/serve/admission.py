"""Admission control: bounded queueing, per-tenant caps, load shedding.

A server that queues without bound does not degrade, it collapses —
latency grows past every deadline while memory fills with requests
whose clients gave up long ago.  The admission controller keeps the
serving layer honest under overload by refusing work *early*, with a
typed :class:`~repro.errors.ServeOverloadError` the client can act on:

* **bounded queue** — at most ``max_pending`` requests may wait for
  a slot; the next one is shed immediately (``reason="queue_full"``);
* **per-tenant concurrency cap** — one tenant may hold at most
  ``per_tenant`` slots, so a single chatty client cannot starve the
  rest (``reason="tenant_cap"``);
* **timeout shedding** — a request that cannot get a slot within
  ``queue_timeout`` seconds is shed (``reason="timeout"``) rather than
  served arbitrarily late.

``max_concurrent`` bounds globally-admitted work; it defaults to
unbounded because the :class:`~repro.serve.pool.WorkerPool` already
bounds probabilistic work by construction — set it when deterministic
reads need throttling too.

Usage (always through the server)::

    async with admission.admit(tenant):
        ... serve the request ...
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Dict, Optional

from repro.errors import ServeOverloadError

__all__ = ["AdmissionController"]


class _Ticket:
    """Context manager holding one admitted request's slots."""

    def __init__(self, controller: "AdmissionController", tenant: str):
        self._controller = controller
        self._tenant = tenant

    async def __aenter__(self) -> "_Ticket":
        await self._controller._admit(self._tenant)
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self._controller._release(self._tenant)


class AdmissionController:
    """Gatekeeper in front of the serving layer's request path."""

    def __init__(
        self,
        *,
        max_pending: int = 128,
        per_tenant: int = 8,
        queue_timeout: float = 5.0,
        max_concurrent: Optional[int] = None,
    ):
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if per_tenant < 1:
            raise ValueError("per_tenant must be >= 1")
        self.max_pending = max_pending
        self.per_tenant = per_tenant
        self.queue_timeout = queue_timeout
        self.max_concurrent = max_concurrent
        self._active = 0
        self._tenant_active: Dict[str, int] = {}
        self._waiters: "deque[asyncio.Future[None]]" = deque()
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_timeout = 0
        self.shed_tenant_cap = 0

    # ------------------------------------------------------------------
    def admit(self, tenant: str = "default") -> _Ticket:
        """An ``async with``-able ticket for one request."""
        return _Ticket(self, tenant)

    def _has_capacity(self) -> bool:
        return self.max_concurrent is None or self._active < self.max_concurrent

    async def _admit(self, tenant: str) -> None:
        if self._tenant_active.get(tenant, 0) >= self.per_tenant:
            self.shed_tenant_cap += 1
            raise ServeOverloadError(
                f"tenant {tenant!r} already holds {self.per_tenant} slots",
                reason="tenant_cap",
            )
        # Re-check after every wakeup: a freed slot may have been taken
        # by a fresh arrival before this waiter resumed, so waking up is
        # a hint, not a grant.  The deadline spans all waits.
        deadline: Optional[float] = None
        while not self._has_capacity():
            loop = asyncio.get_running_loop()
            if deadline is None:
                deadline = loop.time() + self.queue_timeout
            if len(self._waiters) >= self.max_pending:
                self.shed_queue_full += 1
                raise ServeOverloadError(
                    f"admission queue full ({self.max_pending} waiting)",
                    reason="queue_full",
                )
            await self._wait_for_slot(loop, deadline)
        self._active += 1
        self._tenant_active[tenant] = self._tenant_active.get(tenant, 0) + 1
        self.admitted += 1

    async def _wait_for_slot(
        self, loop: asyncio.AbstractEventLoop, deadline: float
    ) -> None:
        remaining = deadline - loop.time()
        if remaining <= 0:
            self.shed_timeout += 1
            raise ServeOverloadError(
                f"no admission slot within {self.queue_timeout:.1f}s",
                reason="timeout",
            )
        future: asyncio.Future = loop.create_future()
        self._waiters.append(future)

        def _expire() -> None:
            if not future.done():
                future.set_exception(
                    ServeOverloadError(
                        f"no admission slot within {self.queue_timeout:.1f}s",
                        reason="timeout",
                    )
                )

        handle = loop.call_later(remaining, _expire)
        try:
            await future
        except ServeOverloadError:
            self.shed_timeout += 1
            raise
        finally:
            handle.cancel()
            if future in self._waiters:
                self._waiters.remove(future)

    def _release(self, tenant: str) -> None:
        self._active -= 1
        remaining = self._tenant_active.get(tenant, 0) - 1
        if remaining <= 0:
            self._tenant_active.pop(tenant, None)
        else:
            self._tenant_active[tenant] = remaining
        # Wake the longest-waiting request now that a slot is free.
        while self._waiters and self._has_capacity():
            future = self._waiters.popleft()
            if not future.done():
                future.set_result(None)
                break

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Requests currently holding an admission slot."""
        return self._active

    @property
    def queue_depth(self) -> int:
        """Requests currently parked waiting for a slot."""
        return len(self._waiters)

    def stats(self) -> Dict[str, object]:
        return {
            "active": self._active,
            "queue_depth": self.queue_depth,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_timeout": self.shed_timeout,
            "shed_tenant_cap": self.shed_tenant_cap,
            "per_tenant_active": dict(self._tenant_active),
        }
