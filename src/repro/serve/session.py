"""Per-client server sessions and the serve-layer result type.

A :class:`ServerSession` is the multi-tenant counterpart of
:class:`repro.api.session.Session`: a thin, cheap handle a client holds
for the duration of a conversation with the server.  It owns no engine
state — every statement is routed through the server, which serializes
committed writes, snapshots reads, and multiplexes probabilistic work
onto the shared :class:`~repro.serve.pool.WorkerPool`.  Hundreds of
concurrent sessions are therefore hundreds of *labels*, not hundreds of
chains.

What a session guarantees its client:

* **snapshot isolation** — every read (deterministic or probabilistic)
  executes against the committed world at one single version, captured
  atomically with the plan; concurrent DML never tears a read;
* **read-your-writes freshness** — the captured version is the latest
  committed version at the moment the read is admitted, so a result's
  :attr:`ServeResult.db_version` is never older than any commit the
  client observed before issuing it;
* **typed overload** — when the server sheds the request instead of
  serving it, the session raises
  :class:`~repro.errors.ServeOverloadError` with a machine-readable
  ``reason``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import EvaluationError

__all__ = ["ServeResult", "ServerSession"]

Row = Tuple[Any, ...]


@dataclass
class ServeResult:
    """One served statement's outcome.

    ``db_version`` is the committed database version the statement
    observed (for DML/DDL: the version its own commit produced) — the
    staleness audit trail every serving test and bench asserts on.
    ``cached`` marks probabilistic answers served from the shared
    marginal cache; ``samples`` is the cumulative sample count backing
    a probabilistic answer.  ``degraded`` marks answers served from a
    *stale* cached entry while the probabilistic path's circuit breaker
    is open: the rows are real marginals, but computed against an older
    committed version than the request observed (``db_version`` still
    reports the observed version; the entry's own version is older).
    """

    kind: str
    db_version: int
    rows: Tuple[Row, ...] = ()
    columns: Tuple[str, ...] = ()
    rowcount: int = 0
    samples: int = 0
    cached: bool = False
    degraded: bool = False
    wall_ms: float = 0.0
    tenant: str = "default"

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class _SessionCounters:
    """Per-session traffic counters (surfaced via ``stats()``)."""

    queries: int = 0
    probabilistic: int = 0
    writes: int = 0
    cache_hits: int = 0
    degraded: int = 0
    shed: int = 0
    errors: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


class ServerSession:
    """One client's handle onto a :class:`~repro.serve.server.ReproServer`.

    Obtained from :meth:`ReproServer.session`; all methods are
    coroutine-based and safe to use from many concurrent tasks of the
    same event loop (the server serializes what must be serialized).
    """

    def __init__(self, server: Any, tenant: str = "default"):
        self._server = server
        self.tenant = tenant
        self._closed = False
        self.counters = _SessionCounters()

    # ------------------------------------------------------------------
    async def execute(
        self,
        sql: str,
        *,
        samples: Optional[int] = None,
        burn_in: int = 0,
    ) -> ServeResult:
        """Execute one SQL statement through the server.

        Mirrors :meth:`repro.api.session.Session.execute`: no
        ``samples`` means DDL/DML/deterministic SELECT; ``samples=N``
        estimates tuple marginals from ``N`` thinned MCMC samples on a
        leased chain worker (or the shared marginal cache).
        """
        if self._closed:
            raise EvaluationError("server session is closed")
        from repro.errors import ServeOverloadError

        try:
            result = await self._server._serve(
                self.tenant, sql, samples=samples, burn_in=burn_in
            )
        except ServeOverloadError:
            self.counters.shed += 1
            raise
        except Exception:
            self.counters.errors += 1
            raise
        if result.kind in ("dml", "ddl"):
            self.counters.writes += 1
        elif result.kind == "probabilistic":
            self.counters.probabilistic += 1
            if result.cached:
                self.counters.cache_hits += 1
            if result.degraded:
                self.counters.degraded += 1
        else:
            self.counters.queries += 1
        return result

    # ------------------------------------------------------------------
    @property
    def db_version(self) -> int:
        """The latest committed version this session could observe now."""
        return self._server.version

    def stats(self) -> Dict[str, Any]:
        """This session's counters plus the shared server stats."""
        return {
            "tenant": self.tenant,
            "session": vars(self.counters) | {},
            "server": self._server.stats(),
        }

    def close(self) -> None:
        """Release the handle (server-side resources are shared and
        stay up; this just refuses further statements)."""
        self._closed = True
        self._server._forget_session(self)

    async def __aenter__(self) -> "ServerSession":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()
