"""The shared marginal-result cache, keyed by (plan fingerprint, version).

Serving cost — not single-query latency — is what makes a
probabilistic database usable at scale, and the cheapest sample is one
somebody else already paid for.  Two probabilistic reads at the same
committed :attr:`~repro.db.database.Database.version` see identical
evidence, so their marginals are interchangeable across tenants; the
cache exploits exactly that and nothing more.

Staleness is impossible by construction: the key *is* the committed
version, so a read that observed version ``v`` can only ever be served
marginals computed against ``v``.  A DML commit does not have to chase
down entries — it just bumps the version, making every older entry
unreachable for new reads (:meth:`MarginalCache.invalidate_below`
additionally frees them eagerly).

Entries carry the cumulative sample count that backs them.  A hit
requires ``samples >= min_samples``: more samples strictly sharpen the
same anytime estimate, so a deeper entry may serve a shallower request,
while a shallower entry stays put until a deeper run replaces it.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional, Tuple

__all__ = ["CachedMarginals", "MarginalCache", "ServeCacheInfo"]


class CachedMarginals(NamedTuple):
    """One cached probabilistic answer."""

    rows: Tuple[Any, ...]
    samples: int
    version: int


class ServeCacheInfo(NamedTuple):
    """Counters exposed by :meth:`MarginalCache.info`."""

    hits: int
    misses: int
    size: int
    maxsize: int
    evictions: int
    invalidations: int


class MarginalCache:
    """A bounded LRU of ``(plan fingerprint, db version) →``
    :class:`CachedMarginals`, shared by every tenant of a server."""

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("marginal cache needs maxsize >= 1")
        self.maxsize = maxsize
        self._entries: dict[tuple[str, int], CachedMarginals] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    def get(
        self, fingerprint: str, version: int, min_samples: int = 0
    ) -> Optional[CachedMarginals]:
        """The cached answer for this plan at this committed version,
        provided it is backed by at least ``min_samples`` samples."""
        key = (fingerprint, version)
        entry = self._entries.pop(key, None)
        if entry is None:
            self._misses += 1
            return None
        # Re-insert to mark most-recently-used (dicts preserve order).
        self._entries[key] = entry
        if entry.samples < min_samples:
            self._misses += 1
            return None
        self._hits += 1
        return entry

    def get_stale(
        self,
        fingerprint: str,
        version: int,
        max_lag: Optional[int] = None,
        min_samples: int = 0,
    ) -> Optional[CachedMarginals]:
        """Best-effort degraded-mode lookup: the *newest* cached entry
        for this plan at any version ``<= version`` (never a version the
        request could not yet observe), optionally bounded to at most
        ``max_lag`` versions behind.  Unlike :meth:`get`, staleness is
        possible by construction here — callers must mark the result
        degraded.  Does not touch the hit/miss counters or LRU order:
        degraded serves should not distort the cache's own telemetry.
        """
        best: Optional[CachedMarginals] = None
        for (entry_fp, entry_version), entry in self._entries.items():
            if entry_fp != fingerprint or entry_version > version:
                continue
            if max_lag is not None and version - entry_version > max_lag:
                continue
            if entry.samples < min_samples:
                continue
            if best is None or entry_version > best.version:
                best = entry
        return best

    def put(
        self, fingerprint: str, version: int, rows: Tuple[Any, ...], samples: int
    ) -> None:
        """Store an answer; a shallower result never overwrites a
        deeper one for the same key."""
        key = (fingerprint, version)
        existing = self._entries.get(key)
        if existing is not None and existing.samples >= samples:
            return
        self._entries.pop(key, None)
        self._entries[key] = CachedMarginals(tuple(rows), samples, version)
        while len(self._entries) > self.maxsize:
            self._entries.pop(next(iter(self._entries)))
            self._evictions += 1

    def invalidate_below(self, version: int) -> int:
        """Eagerly free entries older than ``version`` (they are
        already unreachable for new reads); returns how many."""
        stale = [k for k, e in self._entries.items() if e.version < version]
        for key in stale:
            del self._entries[key]
        self._invalidations += len(stale)
        return len(stale)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> ServeCacheInfo:
        return ServeCacheInfo(
            self._hits,
            self._misses,
            len(self._entries),
            self.maxsize,
            self._evictions,
            self._invalidations,
        )
