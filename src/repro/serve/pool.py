"""Leased chain workers: the serving layer's compute substrate.

The paper keeps MCMC chains *resident* — inference is a long-lived
process queries tap into, not a per-request computation.  A
:class:`ChainWorker` is one such resident chain: its own copy-on-write
world (built through the attached chain factory, the PR-2 ``(db,
chain)`` snapshot idiom), its own sampler state, and a cache of
per-query evaluators sharing that chain, so repeated queries *continue*
sampling instead of restarting — exactly the anytime contract of
:class:`~repro.api.session.Session`'s runner cache, lifted out of the
single-owner session into a leasable unit.

A :class:`WorkerPool` owns N such workers and leases them to concurrent
requests with FIFO fairness: ``await acquire()`` either pops an idle
worker or parks the caller in arrival order; ``release()`` hands the
worker straight to the longest-waiting caller (no barging).  The pool
also carries the two maintenance duties the session's runner cache
performs inline:

* **dead-worker eviction** — a worker whose run raised is poisoned
  (its evaluator/view state may be half-updated, exactly the condition
  :meth:`Session._evict_if_dead` guards against); ``release()`` closes
  it and schedules a fresh replacement, built from the last committed
  snapshot *in a worker thread* (a build replays the whole world, far
  too slow for the event loop) and handed to the longest waiter once
  ready;
* **idle keepalive** — :meth:`reap_idle` drops the cached evaluators
  (delta recorders + materialized views) of workers idle past the
  keepalive window, freeing view memory while keeping the chain warm.

Version discipline: every worker records the committed
:attr:`~repro.db.database.Database.version` of the snapshot it was
built from.  The serving session compares it against the version its
request observed and calls :meth:`ChainWorker.rebase` when the world
has moved on — the copy-on-write analogue of PR-5's
repair-or-invalidate routing.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.core.materialized import MaterializedEvaluator
from repro.db.database import Database, Snapshot
from repro.errors import EvaluationError, ServeOverloadError
from repro.mcmc.chain import MarkovChain
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec
from repro.resilience.heartbeat import HeartbeatMonitor

__all__ = ["ChainWorker", "WorkerPool", "WorkerRun"]

Row = Tuple[Any, ...]


class WorkerRun:
    """The outcome of one leased run: ranked marginal rows plus the
    cumulative sample count backing them."""

    def __init__(self, rows: Tuple[Row, ...], samples: int, wall: float):
        self.rows = rows
        self.samples = samples
        self.wall = wall


class _WorkerQuery:
    """One query's evaluator over the worker's chain; the initial world
    counts as a sample only on the evaluator's first run (the
    :class:`~repro.api.session.Session` ``_ChainRunner`` contract)."""

    def __init__(self, evaluator: MaterializedEvaluator):
        self.evaluator = evaluator
        self.first = True

    def run(self, samples: int, burn_in: int) -> None:
        include_initial = self.first
        self.first = False
        self.evaluator.run(
            samples, include_initial_sample=include_initial, burn_in=burn_in
        )

    def detach(self) -> None:
        self.evaluator.detach()


class ChainWorker:
    """One resident inference worker, leased exclusively per run."""

    def __init__(
        self,
        index: int,
        factory: Any,
        snapshot: Snapshot,
        fault_spec: Optional[FaultSpec] = None,
    ):
        self.index = index
        self.factory = factory
        self.version = -1
        self.db: Optional[Database] = None
        self.chain: Optional[MarkovChain] = None
        self._queries: Dict[str, _WorkerQuery] = {}
        self.last_used = time.monotonic()
        self.leased = False
        self.failed = False
        self.closed = False
        self.runs = 0
        self.rebases = 0
        self._injector: Optional[FaultInjector] = (
            None if fault_spec is None else fault_spec.injector()
        )
        self._build(snapshot)

    # ------------------------------------------------------------------
    def _build(self, snapshot: Snapshot) -> None:
        self.db, self.chain = self.factory.rebased(snapshot)(self.index)
        self.version = snapshot.version

    def rebase(self, snapshot: Snapshot) -> None:
        """Rebuild world + chain from ``snapshot`` (a newer committed
        version); cached evaluators are dropped — their views describe
        the old world."""
        self._drop_queries()
        self._build(snapshot)
        self.rebases += 1

    def _drop_queries(self) -> None:
        for query in self._queries.values():
            query.detach()
        self._queries.clear()

    # ------------------------------------------------------------------
    def run(
        self, fingerprint: str, plan: Any, samples: int, burn_in: int = 0
    ) -> WorkerRun:
        """Advance this worker's chain ``samples`` thinned steps for one
        query and return the cumulative ranked marginals.

        Runs synchronously — the serving layer calls it from a thread
        while holding the lease, so the worker's state is never shared.
        Any exception poisons the worker (``failed``): half-applied
        view state must not serve another request, mirroring the
        session's dead-runner eviction.
        """
        if self.closed:
            raise EvaluationError(f"chain worker {self.index} is closed")
        started = time.perf_counter()
        try:
            if self._injector is not None:
                # Chaos hook: in-process workers have no pid/pipe to
                # kill, so every fatal fault kind degrades to a raised
                # EvaluationError — which rides the normal poison→evict
                # path below, exactly what the harness wants to test.
                self._injector.on_run(self.runs)
            query = self._queries.get(fingerprint)
            if query is None:
                query = _WorkerQuery(
                    MaterializedEvaluator(self.db, self.chain, [plan])
                )
                self._queries[fingerprint] = query
            query.run(samples, burn_in)
        except Exception:
            self.failed = True
            raise
        estimator = query.evaluator.estimators[0]
        rows = tuple(
            row + (probability,)
            for row, probability in sorted(
                estimator.probabilities().items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        self.runs += 1
        self.last_used = time.monotonic()
        return WorkerRun(rows, estimator.num_samples, time.perf_counter() - started)

    # ------------------------------------------------------------------
    def reap(self) -> None:
        """Drop cached evaluator/view state but keep the chain warm."""
        self._drop_queries()

    def close(self) -> None:
        self._drop_queries()
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else ("leased" if self.leased else "idle")
        return f"ChainWorker({self.index}, v{self.version}, {state})"


class WorkerPool:
    """A fixed-size pool of :class:`ChainWorker`\\ s with fair leasing.

    Parameters
    ----------
    factory:
        A chain factory exposing ``rebased(snapshot)`` (e.g.
        :class:`~repro.ie.ner.pdb.SeededChainFactory`) — required, since
        serving correctness depends on rebuilding workers from the
        *current* committed world, never the factory's baked-in corpus.
    size:
        Number of resident workers; the hard concurrency bound on
        probabilistic work.
    keepalive_s:
        Idle window after which :meth:`reap_idle` frees a worker's
        cached view state (``None`` disables reaping).
    fault_plan:
        Optional seeded :class:`~repro.resilience.faults.FaultPlan` for
        chaos testing.  A worker spawned at index *i* carries the plan's
        faults for that index; replacement workers get fresh indexes, so
        a fault fires at most once and the replacement runs clean.
    """

    def __init__(
        self,
        factory: Any,
        size: int,
        *,
        keepalive_s: float | None = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if size < 1:
            raise EvaluationError("worker pool needs size >= 1")
        if not callable(getattr(factory, "rebased", None)):
            raise EvaluationError(
                "WorkerPool needs a chain factory with rebased(snapshot) "
                "(e.g. task.chain_factory()); an un-rebasable factory "
                "cannot track committed updates"
            )
        self.factory = factory
        self.size = size
        self.keepalive_s = keepalive_s
        self.fault_plan = fault_plan
        self.heartbeats = HeartbeatMonitor()
        self._workers: List[ChainWorker] = []
        self._idle: deque[ChainWorker] = deque()
        self._waiters: "deque[asyncio.Future[ChainWorker]]" = deque()
        self._snapshot: Optional[Snapshot] = None
        self._next_index = 0
        self._replacements: "set[asyncio.Task[None]]" = set()
        self._started = False
        self._closed = False
        self.leases = 0
        self.evictions = 0
        self.reaped = 0

    # ------------------------------------------------------------------
    def start(self, snapshot: Snapshot) -> None:
        """Build all workers from the current committed snapshot."""
        if self._started:
            raise EvaluationError("worker pool already started")
        self._snapshot = snapshot
        for _ in range(self.size):
            self._workers.append(self._spawn(snapshot))
        self._idle.extend(self._workers)
        self._started = True

    def _spawn(self, snapshot: Snapshot, index: Optional[int] = None) -> ChainWorker:
        if index is None:
            index = self._allocate_index()
        spec = (
            self.fault_plan.for_worker(index)
            if self.fault_plan is not None
            else None
        )
        worker = ChainWorker(index, self.factory, snapshot, fault_spec=spec)
        self.heartbeats.beat(f"worker-{index}")
        return worker

    def _allocate_index(self) -> int:
        index = self._next_index
        self._next_index += 1
        return index

    def note_snapshot(self, snapshot: Snapshot) -> None:
        """Record the latest committed snapshot (used to build
        replacements for evicted workers)."""
        self._snapshot = snapshot

    # ------------------------------------------------------------------
    def _check_usable(self) -> None:
        if self._closed:
            raise EvaluationError("worker pool is closed")
        if not self._started:
            raise EvaluationError("worker pool was not started")

    async def acquire(self, timeout: float | None = None) -> ChainWorker:
        """Lease a worker; FIFO among waiters.  Raises
        :class:`~repro.errors.ServeOverloadError` (``reason="timeout"``)
        when no worker frees up within ``timeout`` seconds.
        """
        self._check_usable()
        if self._idle:
            worker = self._idle.popleft()
            worker.leased = True
            self.leases += 1
            return worker
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._waiters.append(future)
        handle = None
        if timeout is not None:
            def _expire() -> None:
                if not future.done():
                    future.set_exception(
                        ServeOverloadError(
                            f"no chain worker free within {timeout:.1f}s",
                            reason="timeout",
                        )
                    )
            handle = loop.call_later(timeout, _expire)
        try:
            worker = await future
        except asyncio.CancelledError:
            # Lease granted between cancellation and wakeup: return it
            # to the next waiter so the worker is not stranded leased.
            if future.done() and not future.cancelled() and future.exception() is None:
                granted = future.result()
                granted.leased = False
                self._hand_off(granted)
            raise
        finally:
            if handle is not None:
                handle.cancel()
            if future in self._waiters:
                self._waiters.remove(future)
        self.leases += 1
        return worker

    def release(self, worker: ChainWorker) -> None:
        """Return a lease.  A failed/closed worker is evicted — the
        pool-level analogue of ``Session._evict_if_dead`` — and its
        replacement build is scheduled off the event loop; building
        inline here used to stall every tenant for a full world
        rebuild, since release() runs on the loop thread."""
        worker.leased = False
        if self._closed:
            worker.close()
            return
        if worker.failed or worker.closed:
            worker.close()
            self._workers.remove(worker)
            self.heartbeats.drop(f"worker-{worker.index}")
            self.evictions += 1
            self._schedule_replacement()
            return
        self.heartbeats.beat(f"worker-{worker.index}")
        self._hand_off(worker)

    def _schedule_replacement(self) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            # Pool driven synchronously (no loop to stall): build inline.
            self._adopt(self._spawn(self._snapshot))
            return
        task = loop.create_task(self._replace())
        self._replacements.add(task)
        task.add_done_callback(self._replacements.discard)

    async def _replace(self) -> None:
        # Index allocated on the loop thread so concurrent replacements
        # never race on the counter; only the slow build leaves it.
        index = self._allocate_index()
        snapshot = self._snapshot
        worker = await asyncio.to_thread(self._spawn, snapshot, index)
        self._adopt(worker)

    def _adopt(self, worker: ChainWorker) -> None:
        if self._closed:
            worker.close()
            return
        self._workers.append(worker)
        self._hand_off(worker)

    def _hand_off(self, worker: ChainWorker) -> None:
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                worker.leased = True
                future.set_result(worker)
                return
        self._idle.append(worker)

    # ------------------------------------------------------------------
    def reap_idle(self, now: float | None = None) -> int:
        """Free cached view state of workers idle past the keepalive
        window; returns how many were reaped."""
        if self.keepalive_s is None:
            return 0
        now = time.monotonic() if now is None else now
        count = 0
        for worker in self._idle:
            if worker._queries and now - worker.last_used >= self.keepalive_s:
                worker.reap()
                count += 1
        self.reaped += count
        return count

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "idle": len(self._idle),
            "leased": sum(1 for w in self._workers if w.leased),
            "queue_depth": len(self._waiters),
            "leases": self.leases,
            "evictions": self.evictions,
            "replacing": len(self._replacements),
            "rebases": sum(w.rebases for w in self._workers),
            "runs": sum(w.runs for w in self._workers),
            "reaped": self.reaped,
            "versions": sorted({w.version for w in self._workers}),
            "heartbeats": {
                key: round(age, 3) for key, age in self.heartbeats.ages().items()
            },
        }

    def close(self) -> None:
        """Close every worker and fail parked acquirers."""
        self._closed = True
        for task in list(self._replacements):
            task.cancel()
        for future in list(self._waiters):
            if not future.done():
                future.set_exception(
                    ServeOverloadError("worker pool closed", reason="shutdown")
                )
        self._waiters.clear()
        for worker in self._workers:
            worker.close()
        self._workers = []
        self._idle.clear()
