"""The asyncio serving front-end: one engine, many tenants.

:class:`ReproServer` turns a single-owner
:class:`~repro.api.session.Session` (the *engine*: database + attached
model + live-repair routing) into a multi-tenant service:

* **writes** (DML/DDL) are serialized through one asyncio lock onto the
  engine session, so PR-5's repair-or-invalidate routing runs exactly
  as in the single-owner case and every commit bumps
  :attr:`~repro.db.database.Database.version`;
* **deterministic reads** run against a copy-on-write *read replica* —
  a database rebuilt from the committed snapshot of the version the
  read observed — off the engine lock, so reads never block writes;
* **probabilistic reads** first consult the shared
  :class:`~repro.serve.cache.MarginalCache` keyed by
  ``(plan fingerprint, version)``; on a miss they lease a
  :class:`~repro.serve.pool.ChainWorker`, rebasing it when its snapshot
  version lags the observed version, and publish the refined marginals
  back to the cache;
* **admission** gates everything: bounded queue, per-tenant caps,
  timeout shedding (:mod:`repro.serve.admission`).

Consistency contract (asserted by ``tests/serve`` and the serving
bench): a result's ``db_version`` is the latest committed version at
the moment the statement was admitted, the whole read executes against
exactly that version, and no cached marginal computed against an older
version is ever served to it — zero stale reads, by key construction.

Shutdown is graceful: :meth:`drain` stops admitting, waits for
in-flight statements, then closes the pool.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Optional, Tuple

from repro.api.session import Session
from repro.db.database import Database, Snapshot
from repro.db.ra.eval import evaluate_rows
from repro.errors import EvaluationError, ServeOverloadError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPlan
from repro.serve.admission import AdmissionController
from repro.serve.cache import MarginalCache
from repro.serve.pool import WorkerPool
from repro.serve.session import ServeResult, ServerSession

__all__ = ["ReproServer"]


class ReproServer:
    """Multi-tenant async serving layer over one engine session.

    Parameters
    ----------
    engine:
        An open :class:`~repro.api.session.Session` with its model
        attached.  The server becomes the session's single owner —
        driving it directly while the server runs trips the session's
        busy guard by design.
    workers:
        Resident chain workers in the shared pool.
    chain_factory:
        Factory with ``rebased(snapshot)`` building ``(db, chain)``
        per worker; defaults to the factory attached to the engine.
    cache_size, max_pending, per_tenant, queue_timeout, max_concurrent,
    keepalive_s:
        Knobs forwarded to the marginal cache, admission controller and
        worker pool (see their modules).
    breaker:
        Circuit breaker guarding the probabilistic path.  Consecutive
        worker failures trip it open; while open, probabilistic reads
        are served *degraded* from the newest stale cached marginals
        (``ServeResult.degraded=True``) or shed with
        ``reason="degraded"`` when no usable entry exists.  Defaults to
        a :class:`~repro.resilience.breaker.CircuitBreaker` with its
        stock threshold/cooldown; pass an instance to tune or to inject
        a fake clock in tests.
    stale_max_lag:
        In degraded mode, serve a cached entry at most this many
        committed versions behind the observed version (``None`` = any
        older entry qualifies).
    fault_plan:
        Seeded chaos plan forwarded to the worker pool (tests only).
    """

    def __init__(
        self,
        engine: Session,
        *,
        workers: int = 2,
        chain_factory: Any = None,
        cache_size: int = 256,
        max_pending: int = 128,
        per_tenant: int = 8,
        queue_timeout: float = 5.0,
        max_concurrent: Optional[int] = None,
        keepalive_s: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
        stale_max_lag: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        factory = chain_factory if chain_factory is not None else engine._chain_factory
        if factory is None:
            raise EvaluationError(
                "ReproServer needs a chain factory for its worker pool; "
                "attach one to the engine session (attach_model(..., "
                "chain_factory=task.chain_factory())) or pass chain_factory="
            )
        self.engine = engine
        self.pool = WorkerPool(
            factory, workers, keepalive_s=keepalive_s, fault_plan=fault_plan
        )
        self.cache = MarginalCache(cache_size)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.stale_max_lag = stale_max_lag
        self.admission = AdmissionController(
            max_pending=max_pending,
            per_tenant=per_tenant,
            queue_timeout=queue_timeout,
            max_concurrent=max_concurrent,
        )
        self.queue_timeout = queue_timeout
        self._engine_lock = asyncio.Lock()
        self._snapshot: Optional[Snapshot] = None
        self._replica: Optional[Database] = None
        self._started = False
        self._draining = False
        self._in_flight = 0
        self._idle_event: Optional[asyncio.Event] = None
        self._reaper: "Optional[asyncio.Task[None]]" = None
        self._sessions: list[ServerSession] = []
        self.served = {"query": 0, "probabilistic": 0, "dml": 0, "ddl": 0}
        self.commits = 0
        self.shed_shutdown = 0
        self.degraded_served = 0
        self.shed_degraded = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ReproServer":
        """Build the worker pool from the current committed world."""
        if self._started:
            raise EvaluationError("server already started")
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        async with self._engine_lock:
            # Off the loop: snapshotting copies the whole database.
            snapshot = await asyncio.to_thread(self.engine.database.snapshot)
            self._snapshot = snapshot
        await asyncio.to_thread(self.pool.start, snapshot)
        if self.pool.keepalive_s is not None:
            self._reaper = asyncio.create_task(self._reap_loop())
        self._started = True
        return self

    async def _reap_loop(self) -> None:
        interval = max(self.pool.keepalive_s / 2, 0.05)
        while True:
            await asyncio.sleep(interval)
            self.pool.reap_idle()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new statements, wait for every
        in-flight one, then release the pool."""
        self._draining = True
        if self._idle_event is not None:
            await self._idle_event.wait()
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        self.pool.close()

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.drain()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, tenant: str = "default") -> ServerSession:
        """A new per-client handle (cheap; no engine state)."""
        handle = ServerSession(self, tenant)
        self._sessions.append(handle)
        return handle

    def _forget_session(self, handle: ServerSession) -> None:
        try:
            self._sessions.remove(handle)
        except ValueError:
            pass

    @property
    def version(self) -> int:
        """The latest committed database version."""
        return self.engine.database.version

    # ------------------------------------------------------------------
    # Statement serving
    # ------------------------------------------------------------------
    async def _serve(
        self,
        tenant: str,
        sql: str,
        *,
        samples: Optional[int] = None,
        burn_in: int = 0,
    ) -> ServeResult:
        if not self._started:
            raise EvaluationError("server not started; call start() first")
        if self._draining:
            self.shed_shutdown += 1
            raise ServeOverloadError(
                "server is draining and accepts no new statements",
                reason="shutdown",
            )
        started = time.perf_counter()
        async with self.admission.admit(tenant):
            self._in_flight += 1
            self._idle_event.clear()
            try:
                result = await self._dispatch(
                    tenant, sql, samples=samples, burn_in=burn_in
                )
            finally:
                self._in_flight -= 1
                if self._in_flight == 0:
                    self._idle_event.set()
        result.wall_ms = (time.perf_counter() - started) * 1000.0
        result.tenant = tenant
        self.served[result.kind] = self.served.get(result.kind, 0) + 1
        return result

    async def _dispatch(
        self, tenant: str, sql: str, *, samples: Optional[int], burn_in: int
    ) -> ServeResult:
        kind = self.engine.classify(sql)
        if kind in ("ddl", "dml"):
            return await self._serve_write(sql)
        if samples is None:
            return await self._serve_read(sql)
        return await self._serve_probabilistic(sql, samples, burn_in)

    # -- writes ---------------------------------------------------------
    async def _serve_write(self, sql: str) -> ServeResult:
        async with self._engine_lock:
            cursor = await asyncio.to_thread(self.engine.execute, sql)
            version = self.engine.database.version
            # The committed world moved: drop the cached snapshot and
            # read replica, eagerly free now-unreachable marginals, and
            # let the pool build future replacements from a fresh copy.
            # With stale_max_lag set, a window of recent versions is
            # kept alive — unreachable for normal reads (keyed lookups
            # still miss) but servable by degraded mode.
            self._snapshot = None
            self._replica = None
            floor = (
                version
                if self.stale_max_lag is None
                else version - self.stale_max_lag
            )
            self.cache.invalidate_below(floor)
            self.commits += 1
        return ServeResult(
            kind=cursor.statement_kind,
            db_version=version,
            rowcount=cursor.rowcount,
        )

    def _committed_state(self) -> Tuple[int, Snapshot]:
        """(version, snapshot) of the committed world — call only while
        holding the engine lock so the pair is atomic."""
        if self._snapshot is None or self._snapshot.version != self.engine.database.version:
            self._snapshot = self.engine.database.snapshot()
            self.pool.note_snapshot(self._snapshot)
        return self._snapshot.version, self._snapshot

    # -- deterministic reads -------------------------------------------
    async def _serve_read(self, sql: str) -> ServeResult:
        async with self._engine_lock:
            # repro-lint: disable=RL004 -- _route is an O(1) plan-cache
            # hit (parse only on miss) and must run under the engine
            # lock so (plan, version) stay atomic.
            _, _, planned = self.engine._route(sql)
            plan = planned.plan
            version, snapshot = self._committed_state()
            if self._replica is None or self._replica.version != version:
                # Copy-on-write read replica: all deterministic reads
                # at this version share one rebuilt database and run
                # off the engine lock, so they never block writes and
                # never observe a write mid-statement.
                self._replica = await asyncio.to_thread(
                    Database.from_snapshot, snapshot, "read-replica"
                )
            replica = self._replica
        rows = await asyncio.to_thread(evaluate_rows, plan, replica)
        return ServeResult(
            kind="query",
            db_version=version,
            rows=tuple(rows),
            columns=tuple(a.name for a in plan.schema.attributes),
            rowcount=len(rows),
        )

    # -- probabilistic reads -------------------------------------------
    async def _serve_probabilistic(
        self, sql: str, samples: int, burn_in: int
    ) -> ServeResult:
        async with self._engine_lock:
            # repro-lint: disable=RL004 -- _route is an O(1) plan-cache
            # hit (parse only on miss) and must run under the engine
            # lock so (fingerprint, version) stay atomic.
            fingerprint, kind, planned = self.engine._route(sql)
            if kind != "query":
                raise EvaluationError(
                    f"only SELECT can be evaluated probabilistically ({kind})"
                )
            # Serving uses the planner-rewritten tree: the optimizer
            # contract (same answers as the compiled tree) is exactly
            # what lets the shared marginal cache stay keyed on the
            # normalized SQL fingerprint alone.
            plan = planned.plan
            version, snapshot = self._committed_state()
        columns = tuple(a.name for a in plan.schema.attributes) + ("probability",)
        cached = self.cache.get(fingerprint, version, min_samples=samples)
        if cached is not None:
            return ServeResult(
                kind="probabilistic",
                db_version=version,
                rows=cached.rows,
                columns=columns,
                rowcount=len(cached.rows),
                samples=cached.samples,
                cached=True,
            )
        if not self.breaker.allow():
            return self._degraded_result(fingerprint, version, columns)
        worker = await self.pool.acquire(timeout=self.queue_timeout)
        try:
            if worker.version != version:
                # The worker's world predates (or, after an engine-side
                # restore, postdates) the version this read observed:
                # rebase its copy-on-write world onto the observed
                # snapshot before sampling.
                await asyncio.to_thread(worker.rebase, snapshot)
            run = await asyncio.to_thread(
                worker.run, fingerprint, plan, samples, burn_in
            )
        except Exception:
            # Worker-path failure (poisoned worker, rebase error):
            # feed the breaker so repeated failures open it and route
            # subsequent reads into degraded mode instead of burning a
            # worker per request.
            self.breaker.record_failure()
            raise
        finally:
            self.pool.release(worker)
        self.breaker.record_success()
        self.cache.put(fingerprint, version, run.rows, run.samples)
        return ServeResult(
            kind="probabilistic",
            db_version=version,
            rows=run.rows,
            columns=columns,
            rowcount=len(run.rows),
            samples=run.samples,
        )

    def _degraded_result(
        self, fingerprint: str, version: int, columns: Tuple[str, ...]
    ) -> ServeResult:
        """Breaker-open fallback: the newest stale cached marginals for
        this plan (bounded by ``stale_max_lag``), marked ``degraded``;
        shed with ``reason="degraded"`` when nothing usable is cached."""
        stale = self.cache.get_stale(
            fingerprint, version, max_lag=self.stale_max_lag
        )
        if stale is None:
            self.shed_degraded += 1
            raise ServeOverloadError(
                "probabilistic path is degraded (circuit breaker open) "
                "and no stale cached marginals are available",
                reason="degraded",
            )
        self.degraded_served += 1
        return ServeResult(
            kind="probabilistic",
            db_version=version,
            rows=stale.rows,
            columns=columns,
            rowcount=len(stale.rows),
            samples=stale.samples,
            cached=True,
            degraded=True,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """One aggregated observability snapshot of the whole server:
        engine session stats (plan cache, runners, version), marginal
        cache counters, pool liveness, admission counters, and served
        totals — the serve-layer half of ISSUE 6's observability
        satellite."""
        return {
            "engine": self.engine.stats(),
            "marginal_cache": self.cache.info()._asdict(),
            "pool": self.pool.stats(),
            "admission": self.admission.stats(),
            "served": dict(self.served),
            "commits": self.commits,
            "shed_shutdown": self.shed_shutdown,
            "breaker": self.breaker.stats(),
            "degraded_served": self.degraded_served,
            "shed_degraded": self.shed_degraded,
            "in_flight": self._in_flight,
            "sessions": len(self._sessions),
            "draining": self._draining,
        }
