"""Multi-tenant async serving layer (ISSUE 6).

The paper frames MCMC inference as a *database-resident service*:
chains run continuously while queries and updates arrive concurrently.
This package is that service — an asyncio front-end multiplexing many
concurrent client sessions onto a shared pool of persistent chain
workers, with snapshot-isolated reads, a shared marginal cache keyed by
``(plan fingerprint, committed version)``, and admission control that
sheds load with a typed error instead of collapsing.

Quickstart::

    import asyncio, repro
    from repro.ie.ner import NerTask
    from repro.serve import ReproServer

    task = NerTask(2000, steps_per_sample=200)
    instance = task.make_instance(chain_seed=1)
    engine = repro.connect(instance.db).attach_model(
        instance, chain_factory=task.chain_factory()
    )

    async def main():
        async with ReproServer(engine, workers=4) as server:
            s = server.session(tenant="alice")
            result = await s.execute(
                "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'", samples=50
            )
            print(result.db_version, result.cached, result.rows[:3])

    asyncio.run(main())

Layering: :mod:`~repro.serve.server` owns the event-loop-side
coordination, :mod:`~repro.serve.pool` the leased chain workers,
:mod:`~repro.serve.cache` the shared marginal results,
:mod:`~repro.serve.admission` the backpressure, and
:mod:`~repro.serve.session` the per-client handles.
"""

from repro.errors import ServeOverloadError
from repro.serve.admission import AdmissionController
from repro.serve.cache import CachedMarginals, MarginalCache, ServeCacheInfo
from repro.serve.pool import ChainWorker, WorkerPool
from repro.serve.server import ReproServer
from repro.serve.session import ServeResult, ServerSession

__all__ = [
    "AdmissionController",
    "CachedMarginals",
    "ChainWorker",
    "MarginalCache",
    "ReproServer",
    "ServeCacheInfo",
    "ServeOverloadError",
    "ServeResult",
    "ServerSession",
    "WorkerPool",
]
