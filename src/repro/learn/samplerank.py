"""SampleRank: learning preferences from atomic gradients (§5.2).

The paper trains its skip-chain CRF with one million SampleRank steps,
"learning all parameters in a matter of minutes".  SampleRank runs a
Metropolis-Hastings walk; whenever the model's ranking of the current
and proposed worlds *disagrees* with the objective's ranking (with an
optional margin), it nudges the weights by the difference of sufficient
statistics of the two worlds — a perceptron update restricted to the
factors the proposal touched.

References: Wick et al., "SampleRank: Learning preference from atomic
gradients", NIPS WS 2009 [32].
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict

from repro.errors import InferenceError
from repro.fg.features import FeatureVector, accumulate
from repro.fg.graph import FactorGraph
from repro.fg.variables import FieldVariable
from repro.fg.weights import Weights
from repro.learn.objective import Objective
from repro.mcmc.proposal import ProposalDistribution
from repro.rng import make_rng

__all__ = ["SampleRankTrainer", "TrainingStats"]


@dataclass
class TrainingStats:
    """Counters accumulated over a training run."""

    steps: int = 0
    updates: int = 0
    accepted: int = 0

    @property
    def update_rate(self) -> float:
        return self.updates / self.steps if self.steps else 0.0


class SampleRankTrainer:
    """Online parameter estimation during an MH walk.

    Parameters
    ----------
    graph, proposer:
        Model and jump function, exactly as used at query time.
    objective:
        The ranking supervision (e.g. :class:`HammingObjective` against
        the TRUTH column).
    weights:
        The parameter vector to train, shared with the model templates.
    learning_rate:
        Step size of the perceptron update.
    margin:
        Required model-score separation; a disagreement is registered
        unless the preferred world wins by more than ``margin``.
    walk_policy:
        ``"model"`` follows MH acceptance under the (evolving) model —
        the paper's regime; ``"objective"`` greedily follows the
        objective, useful to bootstrap from zero weights.
    """

    def __init__(
        self,
        graph: FactorGraph,
        proposer: ProposalDistribution,
        objective: Objective,
        weights: Weights,
        learning_rate: float = 1.0,
        margin: float = 0.0,
        walk_policy: str = "model",
        seed: int | None = None,
        rng: random.Random | None = None,
    ):
        if walk_policy not in ("model", "objective"):
            raise InferenceError(f"unknown walk policy {walk_policy!r}")
        self.graph = graph
        self.proposer = proposer
        self.objective = objective
        self.weights = weights
        self.learning_rate = learning_rate
        self.margin = margin
        self.walk_policy = walk_policy
        self.rng = rng if rng is not None else make_rng(seed)
        self.stats = TrainingStats()

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One SampleRank step: propose, maybe update weights, walk."""
        proposal = self.proposer.propose(self.rng)
        changes = {
            variable: value
            for variable, value in proposal.changes.items()
            if variable.value != value
        }
        self.stats.steps += 1
        if not changes:
            return

        objective_delta = self.objective.delta(changes)
        touched = list(changes)

        if self.graph.has_dynamic_templates:
            # Structure may change with the proposal: re-instantiate the
            # adjacent factor set on each side.
            features_before = self._collect_features(touched)
            score_before = self.graph.local_score(touched)
            saved = {variable: variable.value for variable in touched}
            for variable, value in changes.items():
                variable.set_value(value)
            features_after = self._collect_features(touched)
            score_after = self.graph.local_score(touched)
            model_delta = score_after - score_before

            # Perceptron update toward the objective-preferred world.
            if objective_delta > 0 and model_delta <= self.margin:
                self._update(features_after, features_before)
            elif objective_delta < 0 and -model_delta <= self.margin:
                self._update(features_before, features_after)
        else:
            # Static structure: score the two worlds first — a pure
            # what-if through the graph's vectorized hot path — and
            # collect sufficient statistics only when the ranking
            # disagreement actually fires an update.  Most steps agree,
            # so the feature-dict work disappears from the walk; the
            # update math sees exactly the dicts the eager path built.
            model_delta = self.graph.score_delta(changes)
            update = 0
            if objective_delta > 0 and model_delta <= self.margin:
                update = 1  # Toward the proposed world.
            elif objective_delta < 0 and -model_delta <= self.margin:
                update = -1  # Toward the current world.
            if update:
                if len(touched) == 1:
                    factors = self.graph.adjacent_static(touched[0])
                else:
                    factors = list(self.graph.factors_touching(touched).values())
                features_before = self._collect_from(factors)
                saved = {variable: variable.value for variable in touched}
                for variable, value in changes.items():
                    variable.set_value(value)
                features_after = self._collect_from(factors)
                if update > 0:
                    self._update(features_after, features_before)
                else:
                    self._update(features_before, features_after)
            else:
                saved = {variable: variable.value for variable in touched}
                for variable, value in changes.items():
                    variable.set_value(value)

        if self._accept(model_delta, objective_delta):
            self.stats.accepted += 1
            for variable in touched:
                if isinstance(variable, FieldVariable):
                    variable.flush()
        else:
            for variable, value in saved.items():
                variable.set_value(value)

    def train(self, num_steps: int) -> TrainingStats:
        for _ in range(num_steps):
            self.step()
        return self.stats

    # ------------------------------------------------------------------
    def _accept(self, model_delta: float, objective_delta: float) -> bool:
        """Whether the walk moves to the proposed world.

        ``model`` policy uses the standard MH rule with the score delta
        computed under the pre-update weights (as in FACTORIE's
        SampleRank); ``objective`` greedily follows the supervision with
        random tie-breaking.
        """
        if self.walk_policy == "objective":
            if objective_delta != 0:
                return objective_delta > 0
            return self.rng.random() < 0.5
        return model_delta >= 0 or math.log(self.rng.random()) < model_delta

    def _collect_features(self, touched) -> Dict[str, FeatureVector]:
        return self._collect_from(self.graph.factors_touching(touched).values())

    @staticmethod
    def _collect_from(factors) -> Dict[str, FeatureVector]:
        collected: Dict[str, FeatureVector] = {}
        for factor in factors:
            features = factor.features()
            if not features:
                continue
            accumulate(collected.setdefault(factor.template_name, {}), features)
        return collected

    def _update(
        self,
        preferred: Dict[str, FeatureVector],
        other: Dict[str, FeatureVector],
    ) -> None:
        self.stats.updates += 1
        for template, features in preferred.items():
            self.weights.update(template, features, self.learning_rate)
        for template, features in other.items():
            self.weights.update(template, features, -self.learning_rate)
