"""Parameter learning: SampleRank and training objectives.

The paper avoids hand-tuned weights by learning them with SampleRank
(§3, §5.2) — a perceptron-style update applied whenever the model's
ranking of two neighbouring worlds disagrees with the supervision.
"""

from repro.learn.objective import HammingObjective, Objective
from repro.learn.samplerank import SampleRankTrainer, TrainingStats

__all__ = [
    "HammingObjective",
    "Objective",
    "SampleRankTrainer",
    "TrainingStats",
]
