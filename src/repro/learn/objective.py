"""Training objectives for SampleRank.

SampleRank learns from *atomic gradients*: for every MH proposal it
compares the model's ranking of ``(w, w')`` against an objective
function's ranking.  Objectives therefore only need to score the
*difference* between two neighbouring worlds, which keeps training
steps O(|changed variables|).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping

from repro.fg.variables import HiddenVariable

__all__ = ["Objective", "HammingObjective"]


class Objective:
    """Base class: a preference function over possible worlds."""

    def delta(self, changes: Dict[HiddenVariable, Any]) -> float:
        """Objective improvement of applying ``changes``.

        Called *before* the changes are applied, so ``variable.value``
        is the old value and the mapping holds the proposed values.
        Positive means the proposed world is preferred.
        """
        raise NotImplementedError

    def score(self, variables: Iterable[HiddenVariable]) -> float:
        """Absolute objective value of the current assignment (used for
        reporting; not required for training)."""
        raise NotImplementedError


class HammingObjective(Objective):
    """Negative Hamming distance to a ground-truth assignment.

    ``truth`` maps variable names to their true values (for the NER
    application: token primary key → TRUTH label).  Variables without
    an entry contribute nothing.
    """

    def __init__(self, truth: Mapping[Hashable, Any]):
        self._truth = dict(truth)

    def delta(self, changes: Dict[HiddenVariable, Any]) -> float:
        improvement = 0.0
        for variable, new_value in changes.items():
            true_value = self._truth.get(variable.name)
            if true_value is None:
                continue
            improvement += (new_value == true_value) - (variable.value == true_value)
        return improvement

    def score(self, variables: Iterable[HiddenVariable]) -> float:
        return -sum(
            1.0
            for v in variables
            if self._truth.get(v.name) is not None and v.value != self._truth[v.name]
        )

    def accuracy(self, variables: Iterable[HiddenVariable]) -> float:
        """Fraction of variables matching the truth (1.0 when perfect)."""
        total = 0
        correct = 0
        for v in variables:
            true_value = self._truth.get(v.name)
            if true_value is None:
                continue
            total += 1
            correct += v.value == true_value
        return correct / total if total else 1.0
