"""repro — Scalable Probabilistic Databases with Factor Graphs and MCMC.

A from-scratch reproduction of Wick, McCallum & Miklau (VLDB 2010).
The package provides:

* :mod:`repro.db` — a relational engine with incrementally maintained
  materialized views (the DBMS substrate);
* :mod:`repro.fg` — factor graphs: variables, log-linear factors and
  relational factor templates;
* :mod:`repro.mcmc` — Metropolis-Hastings inference over the single
  stored possible world;
* :mod:`repro.learn` — SampleRank parameter estimation;
* :mod:`repro.core` — the paper's contribution: MCMC query evaluation,
  naive (Algorithm 3) and view-maintenance based (Algorithm 1);
* :mod:`repro.ie` — the two applications of the paper: named entity
  recognition with a skip-chain CRF, and entity resolution.

Quickstart::

    from repro.ie.ner import NerPipeline

    pipeline = NerPipeline.small(seed=7)
    result = pipeline.evaluate_query(
        "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'", num_samples=50
    )
    for row, probability in result.top(10):
        print(row, probability)
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]
