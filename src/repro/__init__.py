"""repro — Scalable Probabilistic Databases with Factor Graphs and MCMC.

A from-scratch reproduction of Wick, McCallum & Miklau (VLDB 2010).
The package provides:

* :mod:`repro.db` — a relational engine with incrementally maintained
  materialized views (the DBMS substrate);
* :mod:`repro.fg` — factor graphs: variables, log-linear factors and
  relational factor templates;
* :mod:`repro.mcmc` — Metropolis-Hastings inference over the single
  stored possible world;
* :mod:`repro.learn` — SampleRank parameter estimation;
* :mod:`repro.core` — the paper's contribution: MCMC query evaluation,
  naive (Algorithm 3) and view-maintenance based (Algorithm 1);
* :mod:`repro.ie` — the two applications of the paper: named entity
  recognition with a skip-chain CRF, and entity resolution;
* :mod:`repro.api` — the public front door: :func:`repro.connect`
  opens a SQL session (DDL, DML, deterministic and probabilistic
  queries) over one probabilistic database;
* :mod:`repro.serve` — the multi-tenant async serving layer: many
  concurrent client sessions multiplexed onto a shared pool of leased
  chain workers, with snapshot isolation, a shared marginal cache and
  admission control.

Quickstart::

    import repro
    from repro.ie.ner import NerPipeline

    session = NerPipeline.small(seed=7).session
    cursor = session.execute(
        "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'", samples=50
    )
    for row, probability in cursor.top(10):
        print(row, probability)
    cursor.refine(200)  # anytime: more samples, sharper estimates
"""

from __future__ import annotations

__version__ = "1.8.0"

from repro.api import AnytimeCursor, Cursor, Session, connect
from repro.db import AttrType, Database, Schema
from repro.db.ra import PlannedQuery, Planner, default_planner

__all__ = [
    "AnytimeCursor",
    "AttrType",
    "Cursor",
    "Database",
    "PlannedQuery",
    "Planner",
    "Schema",
    "Session",
    "connect",
    "default_planner",
    "__version__",
]
