"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still discriminating on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A relation schema is malformed or violated (unknown attribute,
    arity mismatch, duplicate attribute names, type mismatch)."""


class IntegrityError(ReproError):
    """A database integrity constraint was violated (duplicate primary
    key, unknown table, delete of a missing row)."""


class QueryError(ReproError):
    """A relational-algebra plan or SQL query is invalid."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class PlanError(QueryError):
    """A logically valid query could not be compiled to an executable or
    incrementally-maintainable plan."""


class DomainError(ReproError):
    """A random variable was assigned a value outside its domain."""


class GraphError(ReproError):
    """The factor graph is structurally invalid (unbound variable,
    factor over unknown variables)."""


class InferenceError(ReproError):
    """MCMC inference was configured or driven incorrectly."""


class EvaluationError(ReproError):
    """Query evaluation over the probabilistic database failed."""


class LiveUpdateError(ReproError):
    """A DML-driven incremental repair of the attached model failed;
    the model may be inconsistent with the stored world and cached
    probabilistic state has been invalidated."""


class SessionBusyError(ReproError):
    """A :class:`~repro.api.session.Session` was entered concurrently
    (from another thread, or re-entrantly from a callback) while a
    statement was still executing.  A session is a single-owner handle;
    concurrent clients belong on the serving layer
    (:mod:`repro.serve`), which multiplexes them safely."""


class ServeOverloadError(ReproError):
    """The serving layer shed a request instead of queueing it.

    ``reason`` discriminates the shed path: ``"queue_full"`` (the
    bounded admission queue was at capacity), ``"timeout"`` (the
    request waited longer than the admission deadline), or
    ``"shutdown"`` (the server is draining and accepts no new work).
    """

    def __init__(self, message: str, reason: str = "queue_full"):
        self.reason = reason
        super().__init__(message)


class ShardingError(ReproError):
    """A database could not be partitioned into independent shards
    (missing shard key, unassigned key value, a factor spanning shards,
    or a query whose answer does not distribute over the shards)."""
