"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still discriminating on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A relation schema is malformed or violated (unknown attribute,
    arity mismatch, duplicate attribute names, type mismatch)."""


class IntegrityError(ReproError):
    """A database integrity constraint was violated (duplicate primary
    key, unknown table, delete of a missing row)."""


class QueryError(ReproError):
    """A relational-algebra plan or SQL query is invalid."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class PlanError(QueryError):
    """A logically valid query could not be compiled to an executable or
    incrementally-maintainable plan."""


class DomainError(ReproError):
    """A random variable was assigned a value outside its domain."""


class GraphError(ReproError):
    """The factor graph is structurally invalid (unbound variable,
    factor over unknown variables)."""


class InferenceError(ReproError):
    """MCMC inference was configured or driven incorrectly."""


class EvaluationError(ReproError):
    """Query evaluation over the probabilistic database failed."""


class WorkerTimeoutError(EvaluationError):
    """A chain worker stayed alive but produced no reply (and no
    heartbeat) within its deadline.  Distinct from
    :class:`WorkerCrashError`: the process is wedged, not dead, so the
    supervisor must kill it before rebuilding.  Subclasses
    :class:`EvaluationError` so pre-existing callers that caught the
    broad class keep working."""

    def __init__(self, message: str, worker_index: int = -1):
        self.worker_index = worker_index
        super().__init__(message)


class RemoteTraceback(ReproError):
    """Carrier for a worker-process traceback re-raised in the parent.

    Chained (``raise WorkerCrashError(...) from RemoteTraceback(...)``)
    so the remote stack renders in the parent's traceback display
    instead of being flattened into a message string."""


class WorkerCrashError(EvaluationError):
    """A chain worker died (killed, crashed, or raised remotely).

    ``remote_traceback`` holds the worker-side traceback text when the
    failure crossed the pipe as an error reply (``None`` for a killed
    process, which never got to report); ``exit_code`` is the process
    exit status when known."""

    def __init__(
        self,
        message: str,
        worker_index: int = -1,
        remote_traceback: str | None = None,
        exit_code: int | None = None,
    ):
        self.worker_index = worker_index
        self.remote_traceback = remote_traceback
        self.exit_code = exit_code
        super().__init__(message)


class CheckpointError(ReproError):
    """A chain checkpoint could not be serialized, stored, or loaded.
    Checkpoint *write* failures are non-fatal to the running chain (the
    worker keeps sampling and reports the skip); a missing or unreadable
    checkpoint at recovery time is fatal for that worker."""


class RetryExhaustedError(ReproError):
    """A supervised operation failed on every attempt its
    :class:`~repro.resilience.RetryPolicy` allowed (or its deadline
    expired first).  ``attempts`` is how many were made; the last
    failure is chained as ``__cause__``."""

    def __init__(self, message: str, attempts: int = 0):
        self.attempts = attempts
        super().__init__(message)


class LiveUpdateError(ReproError):
    """A DML-driven incremental repair of the attached model failed;
    the model may be inconsistent with the stored world and cached
    probabilistic state has been invalidated."""


class SessionBusyError(ReproError):
    """A :class:`~repro.api.session.Session` was entered concurrently
    (from another thread, or re-entrantly from a callback) while a
    statement was still executing.  A session is a single-owner handle;
    concurrent clients belong on the serving layer
    (:mod:`repro.serve`), which multiplexes them safely."""


class ServeOverloadError(ReproError):
    """The serving layer shed a request instead of queueing it.

    ``reason`` discriminates the shed path: ``"queue_full"`` (the
    bounded admission queue was at capacity), ``"timeout"`` (the
    request waited longer than the admission deadline),
    ``"tenant_cap"`` (one tenant held all its slots), ``"shutdown"``
    (the server is draining and accepts no new work), or
    ``"degraded"`` (the worker circuit breaker is open and no cached
    marginals exist within the staleness bound).
    """

    def __init__(self, message: str, reason: str = "queue_full"):
        self.reason = reason
        super().__init__(message)


class ShardingError(ReproError):
    """A database could not be partitioned into independent shards
    (missing shard key, unassigned key value, a factor spanning shards,
    or a query whose answer does not distribute over the shards)."""
