"""Figure 8 (Appendix 9.1): selected tuple probabilities for Query 4.

Query 4 joins TOKEN with itself: person mentions co-occurring (same
document) with the string "Boston" labelled B-ORG.  The paper found
baseball-affiliated people dominating (the Boston Red Sox effect) with
a mix of confident and uncertain tuples, because "Boston" is genuinely
ambiguous between LOC and ORG-head.  Our synthetic corpus plants the
same ambiguity (DESIGN.md substitutions).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    QUERY4,
    make_task,
    print_header,
    print_table,
    scale_factor,
)

NUM_TOKENS = 25_000
STEPS_PER_SAMPLE = 200
NUM_SAMPLES = 120


@pytest.mark.benchmark(group="fig8")
def test_fig8_query4_tuple_probabilities(benchmark):
    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        instance = task.make_instance(88)
        evaluator = instance.evaluator([QUERY4], "materialized")
        result = evaluator.run(NUM_SAMPLES)
        truth_person_strings = {
            row[2]
            for row in instance.db.table("TOKEN").rows()
            if row[4] == "B-PER"
        }
        return result.marginals, truth_person_strings

    marginals, person_strings = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    top = marginals.top(12)
    print_header("Figure 8: Query 4 tuple probabilities (PER co-occurring with Boston=B-ORG)")
    print_table(
        ["person mention", "probability", "is person string (truth)"],
        [
            (row[0], f"{probability:.3f}", str(row[0] in person_strings))
            for row, probability in top
        ],
    )
    print(
        "Paper: returned mentions dominated by people affiliated with "
        "Boston-named organizations; mixture of certain and uncertain tuples."
    )
    benchmark.extra_info["top"] = [
        {"string": row[0], "p": probability} for row, probability in top
    ]

    # Shape assertions: the query returns answers, probabilities are in
    # (0, 1], and the high-confidence answers are genuine person strings.
    assert top, "Query 4 should return tuples on this corpus"
    assert all(0.0 < p <= 1.0 for _, p in top)
    confident = [row for row, p in top if p > 0.5]
    if confident:
        precision = sum(row[0] in person_strings for row in confident) / len(confident)
        assert precision >= 0.5, "confident answers should mostly be person strings"
