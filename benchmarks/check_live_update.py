#!/usr/bin/env python
"""CI gate for the ISSUE 5 live-update acceptance criterion.

Reads a pytest-benchmark JSON produced by::

    pytest benchmarks/bench_view_maintenance.py -k live \\
        --benchmark-json=BENCH_live_update.json

and fails (exit 1) when repair+resume is not at least ``--min-speedup``
times faster than rebuild+reburn for the single-row INSERT at the
40k-token NER scale.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Single source of truth for the gate; bench_view_maintenance.py
# imports this for its in-test assertion and CI uses the script's
# default, so one edit moves every enforcement point.
MIN_LIVE_UPDATE_SPEEDUP = 10.0


def series_means(report: dict) -> dict[str, float]:
    """series name -> mean seconds for the live-update group."""
    out: dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        if bench.get("group") != "live-update":
            continue
        series = bench.get("extra_info", {}).get("series")
        if series:
            out[series] = bench["stats"]["mean"]
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_LIVE_UPDATE_SPEEDUP,
        help=(
            "smallest allowed rebuild/repair mean-time ratio "
            f"(default {MIN_LIVE_UPDATE_SPEEDUP})"
        ),
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text(encoding="utf-8"))
    means = series_means(report)
    missing = {"repair_resume", "rebuild_reburn"} - means.keys()
    if missing:
        print(f"live-update series missing from report: {sorted(missing)}")
        return 1
    speedup = means["rebuild_reburn"] / means["repair_resume"]
    print(
        f"repair+resume {means['repair_resume'] * 1e3:.2f}ms vs "
        f"rebuild+reburn {means['rebuild_reburn'] * 1e3:.2f}ms "
        f"-> {speedup:.1f}x (gate: >= {args.min_speedup}x)"
    )
    if speedup < args.min_speedup:
        print("FAIL: live update repair advantage below the gate")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
