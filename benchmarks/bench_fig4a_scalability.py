"""Figure 4(a): scalability of query evaluation (paper §5.3).

Reproduces the log-scale sweep of *time to halve the squared error of
the initial single-sample approximation* for Query 1, comparing the
naive evaluator (Algorithm 3) against the view-maintenance evaluator
(Algorithm 1), plus the in-text observations:

* at the smallest sizes the two are comparable (the paper saw naive
  slightly quicker at 10k tuples — 19s vs 21s — due to diff-table
  overhead; our in-memory delta tables are cheaper, so the crossover
  sits below the smallest size measured here);
* the naive evaluator's per-sample cost grows linearly with the
  database while the materialized evaluator's stays flat, so the gap
  widens without bound (the paper projects 227h vs 2.5h at 10M).

Paper scale: 10k → 10M tuples, k=10,000 walk-steps per sample.
Default repro scale: 1k → 25k tokens, k=100 (REPRO_SCALE multiplies).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    QUERY1,
    fig4a_sizes,
    fmt_seconds,
    make_task,
    print_header,
    print_table,
    reference_marginals,
)
from repro.bench.harness import measure_time_to_fraction

STEPS_PER_SAMPLE = 100
GT_CHAINS = 2


def _gt_samples(num_tokens: int) -> int:
    # Reference chains get ~3x the walk budget the measured runs need.
    return 400 if num_tokens <= 10_000 else 500


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_scalability(benchmark):
    def experiment():
        rows = []
        for num_tokens in fig4a_sizes():
            task = make_task(num_tokens, steps_per_sample=STEPS_PER_SAMPLE)
            truth = reference_marginals(
                task,
                [QUERY1],
                num_chains=GT_CHAINS,
                samples_per_chain=_gt_samples(num_tokens),
            )[0]
            naive = measure_time_to_fraction(task, QUERY1, "naive", 31, truth)
            materialized = measure_time_to_fraction(
                task, QUERY1, "materialized", 31, truth
            )
            rows.append(
                {"tokens": num_tokens, "naive": naive, "materialized": materialized}
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header("Figure 4(a): time to half squared error vs #tuples (Query 1)")
    print_table(
        [
            "tokens",
            "naive t1/2",
            "mat t1/2",
            "samples",
            "naive/sample",
            "mat/sample",
            "speedup",
        ],
        [
            (
                r["tokens"],
                fmt_seconds(r["naive"]["seconds"]),
                fmt_seconds(r["materialized"]["seconds"]),
                r["naive"]["samples"],
                fmt_seconds(r["naive"]["per_sample"]),
                fmt_seconds(r["materialized"]["per_sample"]),
                f'{r["naive"]["per_sample"] / r["materialized"]["per_sample"]:.2f}x',
            )
            for r in rows
        ],
    )
    print(
        "Paper: naive/materialized comparable at 10k tuples (19s vs 21s), "
        "crossover by 100k (178s vs 162s), orders of magnitude at 10M "
        "(227h projected vs 2.5h).  Shape check: naive per-sample cost "
        "grows ~linearly with tuples; materialized stays flat."
    )
    benchmark.extra_info["rows"] = [
        {
            "tokens": r["tokens"],
            "naive_seconds": r["naive"]["seconds"],
            "materialized_seconds": r["materialized"]["seconds"],
            "naive_per_sample": r["naive"]["per_sample"],
            "materialized_per_sample": r["materialized"]["per_sample"],
        }
        for r in rows
    ]

    # Shape assertions: the naive evaluator's per-sample cost grows with
    # the database; the materialized evaluator's does not (it may even
    # shrink as the per-sample delta becomes relatively smaller).
    growth_naive = (
        rows[-1]["naive"]["per_sample"] / rows[0]["naive"]["per_sample"]
    )
    growth_mat = (
        rows[-1]["materialized"]["per_sample"]
        / rows[0]["materialized"]["per_sample"]
    )
    assert growth_naive > 2.0, "naive per-sample cost should grow with size"
    assert growth_mat < growth_naive, "materialized must scale better than naive"
    assert (
        rows[-1]["materialized"]["per_sample"] < rows[-1]["naive"]["per_sample"]
    ), "materialized should win per sample at the top of the sweep"
