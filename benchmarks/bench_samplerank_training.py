"""Ablation: SampleRank training (§5.2).

The paper trains the skip-chain CRF with one million SampleRank steps,
"learning all parameters in a matter of minutes".  This bench trains
from zero weights at repro scale and reports wall-clock plus the token
accuracy an MH walk reaches under (a) zero weights, (b) SampleRank
weights, (c) the closed-form fitted weights the other benches use.
"""

from __future__ import annotations

import pytest

from repro.bench import fmt_seconds, make_task, print_header, print_table, scale_factor

NUM_TOKENS = 3_000
TRAIN_STEPS = 60_000
WALK_STEPS = 30_000


def _walk_accuracy(task) -> float:
    instance = task.make_instance(3)
    instance.kernel.run(WALK_STEPS)
    return instance.model.accuracy_against_truth()


@pytest.mark.benchmark(group="samplerank")
def test_samplerank_training(benchmark):
    def experiment():
        rows = {}
        for mode, kwargs in (
            ("zero", {"weight_mode": "zero"}),
            (
                "samplerank",
                {"weight_mode": "trained", "train_steps": TRAIN_STEPS},
            ),
            ("fitted", {"weight_mode": "fitted"}),
        ):
            import time

            started = time.perf_counter()
            task = make_task(
                NUM_TOKENS * scale_factor(),
                corpus_seed=2,
                steps_per_sample=500,
                **kwargs,
            )
            build_seconds = time.perf_counter() - started
            rows[mode] = {
                "build_seconds": build_seconds,
                "accuracy": _walk_accuracy(task),
                "parameters": task.weights.num_parameters(),
                "updates": (
                    task.training_stats.updates if task.training_stats else 0
                ),
            }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header("SampleRank training ablation (§5.2)")
    print_table(
        ["weights", "build time", "#params", "updates", "walk accuracy"],
        [
            (
                mode,
                fmt_seconds(data["build_seconds"]),
                data["parameters"],
                data["updates"],
                f'{data["accuracy"]:.3f}',
            )
            for mode, data in rows.items()
        ],
    )
    print(
        "Paper: SampleRank learns all parameters in minutes; the learned "
        "model drives the sampler that answers every query."
    )
    benchmark.extra_info["rows"] = rows

    assert rows["samplerank"]["accuracy"] > rows["zero"]["accuracy"] + 0.15, (
        "SampleRank must clearly beat the untrained model"
    )
    assert rows["samplerank"]["updates"] > 0
