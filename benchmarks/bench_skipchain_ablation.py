"""Ablation: skip-chain vs linear-chain CRF (§5.1).

The paper chooses the skip-chain model because it beats linear chains
on IE accuracy, at the price of making exact inference intractable —
which is the very motivation for MCMC query evaluation.  This bench
compares token accuracy of MH decoding under both models on the same
corpus and shows the skip edges' consistency effect on repeated
ambiguous strings.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.bench import make_task, print_header, print_table, scale_factor

NUM_TOKENS = 4_000
WALK_STEPS = 60_000


def _consistency(instance) -> float:
    """Fraction of repeated-capitalized-string groups (per document)
    whose tokens currently agree on one label."""
    model = instance.model
    agree = 0
    total = 0
    seen = set()
    for variable in model.variables:
        mates = model.skip_neighbors(variable)
        if not mates:
            continue
        group = tuple(
            sorted({variable.name} | {m.name for m in mates}, key=repr)
        )
        if group in seen:
            continue
        seen.add(group)
        labels = {variable.value} | {m.value for m in mates}
        total += 1
        agree += len(labels) == 1
    return agree / total if total else 1.0


@pytest.mark.benchmark(group="skipchain")
def test_skip_chain_vs_linear_chain(benchmark):
    def experiment():
        rows = {}
        for name, use_skip in (("linear-chain", False), ("skip-chain", True)):
            task = make_task(
                NUM_TOKENS * scale_factor(),
                corpus_seed=5,
                steps_per_sample=WALK_STEPS,
                use_skip=use_skip,
            )
            instance = task.make_instance(11)
            instance.kernel.run(WALK_STEPS)
            rows[name] = {
                "accuracy": instance.model.accuracy_against_truth(),
                "consistency": _consistency(instance),
                "skip_edges": instance.model.num_skip_edges(),
            }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header("Skip-chain vs linear-chain ablation")
    print_table(
        ["model", "token accuracy", "same-string label consistency", "skip edges"],
        [
            (name, f'{d["accuracy"]:.3f}', f'{d["consistency"]:.3f}', d["skip_edges"])
            for name, d in rows.items()
        ],
    )
    print(
        "Paper (§5.1): skip chains achieve much better results than linear "
        "chains; the skip edges couple identical strings within a document."
    )
    benchmark.extra_info["rows"] = rows

    assert rows["skip-chain"]["consistency"] >= rows["linear-chain"]["consistency"], (
        "skip edges must increase same-string label consistency"
    )
