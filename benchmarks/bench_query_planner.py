"""Query-planner benchmark: selective queries via factor-graph pruning
(ISSUE 10 acceptance).

The workload is the paper's 40k-token NER model.  The query carries a
selective *deterministic* predicate (``DOC_ID = 0`` — one document out
of ~300): the planner proves that only document 0's factor-closed group
can contribute answer rows, so the session samples a restricted chain
over that group alone (``MixtureProposer`` with ``focus=1.0``) with a
proportionally shrunk thinning interval, while the unoptimized run
drives the full chain over every variable.

Two series are timed on fresh same-seed instances::

    optimized    session.execute(Q, samples=N)                 # planner on
    unoptimized  session.execute(Q, samples=N, optimize=False) # escape hatch

The speedup gate lives in benchmarks/check_query_planner.py
(MIN_PLANNER_SPEEDUP); CI reruns this bench and fails below it.

Admissibility evidence recorded in the same report:

* ``bit_identical`` — on a query whose predicate touches only
  *uncertain* columns no restriction can fire, so the optimized run
  must reproduce the unoptimized marginals **bit for bit** under the
  same seeds (asserted in-bench);
* frozen-group exactness — after the optimized selective run, every
  variable outside document 0 still holds its initial value (the
  restriction provably never moves what cannot change the answer);
* ``mean_marginal_diff`` — pruned vs full marginals on the selective
  query agree within MCMC noise (the two are different, equally valid,
  samplers of the same posterior).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.api import connect
from repro.bench import make_task, scale_factor

from check_query_planner import MAX_MEAN_MARGINAL_DIFF, MIN_PLANNER_SPEEDUP

TOKENS = 40_000
STEPS_PER_SAMPLE = 500
SAMPLES = 80
BURN_IN = 0

SELECTIVE_QUERY = "SELECT STRING, LABEL FROM TOKEN WHERE DOC_ID = 0"
UNCERTAIN_QUERY = "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'"

BIT_IDENTITY_TOKENS = 2_000
BIT_IDENTITY_SAMPLES = 8


def _session(num_tokens: int, chain_seed: int = 1):
    task = make_task(num_tokens, steps_per_sample=STEPS_PER_SAMPLE)
    instance = task.make_instance(chain_seed)
    return connect(instance.db).attach_model(instance), instance


def _marginals(cursor):
    return sorted(tuple(r) for r in cursor)


@pytest.mark.benchmark(group="query-planner")
def test_selective_query_planner_speedup(benchmark):
    """Optimized vs unoptimized wall time for the selective query, with
    the admissibility assertions run in the same process."""
    tokens = TOKENS * scale_factor()

    def experiment():
        out = {}
        # Unoptimized: the full chain walks every variable per sample.
        session, _ = _session(tokens)
        started = time.perf_counter()
        full_cursor = session.execute(
            SELECTIVE_QUERY, samples=SAMPLES, burn_in=BURN_IN, optimize=False
        )
        full = {tuple(r[:-1]): r[-1] for r in full_cursor}
        out["unoptimized_seconds"] = time.perf_counter() - started
        session.close()

        # Optimized: the planner restricts sampling to document 0.
        session, instance = _session(tokens)
        frozen_before = {
            v: v.value
            for doc, group in instance.model.groups.items()
            if doc != 0
            for v in group
        }
        started = time.perf_counter()
        pruned_cursor = session.execute(
            SELECTIVE_QUERY, samples=SAMPLES, burn_in=BURN_IN
        )
        pruned = {tuple(r[:-1]): r[-1] for r in pruned_cursor}
        out["optimized_seconds"] = time.perf_counter() - started

        # Exactness: provably irrelevant variables never moved.
        assert all(v.value == val for v, val in frozen_before.items()), (
            "targeted sampling moved a variable outside the certified groups"
        )
        runners = [r for r in session._runners.values() if r.targeted]
        assert runners, "the planner restriction did not fire"
        session.close()

        keys = set(full) | set(pruned)
        diffs = [abs(full.get(k, 0.0) - pruned.get(k, 0.0)) for k in keys]
        out["mean_marginal_diff"] = statistics.mean(diffs) if diffs else 0.0
        out["answer_tuples"] = len(keys)
        return out

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = result["unoptimized_seconds"] / result["optimized_seconds"]
    print(
        f"\nselective query @ {tokens} tokens, {SAMPLES} samples: "
        f"unoptimized {result['unoptimized_seconds']:.2f}s, "
        f"optimized {result['optimized_seconds']:.2f}s -> {speedup:.1f}x; "
        f"mean marginal diff {result['mean_marginal_diff']:.3f} "
        f"over {result['answer_tuples']} tuples"
    )
    benchmark.extra_info["tokens"] = tokens
    benchmark.extra_info["samples"] = SAMPLES
    benchmark.extra_info["steps_per_sample"] = STEPS_PER_SAMPLE
    benchmark.extra_info["query"] = SELECTIVE_QUERY
    benchmark.extra_info["unoptimized_seconds"] = result["unoptimized_seconds"]
    benchmark.extra_info["optimized_seconds"] = result["optimized_seconds"]
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["mean_marginal_diff"] = result["mean_marginal_diff"]
    assert speedup >= MIN_PLANNER_SPEEDUP, (
        f"planner speedup {speedup:.1f}x below the "
        f"{MIN_PLANNER_SPEEDUP}x acceptance bar"
    )
    assert result["mean_marginal_diff"] <= MAX_MEAN_MARGINAL_DIFF, (
        "pruned marginals diverged from the full chain beyond MCMC noise"
    )


@pytest.mark.benchmark(group="query-planner-bit-identity")
def test_unoptimized_equivalent_plans_are_bit_identical(benchmark):
    """No restriction can fire on an uncertain-only predicate: the
    optimized session must reproduce the unoptimized marginals exactly
    (same seeds, same worlds, same estimates)."""

    def experiment():
        runs = {}
        for optimize in (True, False):
            session, instance = _session(BIT_IDENTITY_TOKENS * scale_factor())
            cursor = session.execute(
                UNCERTAIN_QUERY, samples=BIT_IDENTITY_SAMPLES, optimize=optimize
            )
            runs[optimize] = (
                _marginals(cursor),
                tuple(v.value for v in instance.model.variables),
                instance.kernel.stats.accepted,
            )
            session.close()
        return runs

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    bit_identical = runs[True] == runs[False]
    print(
        f"\nbit-identity on {UNCERTAIN_QUERY!r}: "
        f"{'EXACT' if bit_identical else 'DIVERGED'} "
        f"({len(runs[True][0])} marginal rows)"
    )
    benchmark.extra_info["query"] = UNCERTAIN_QUERY
    benchmark.extra_info["bit_identical"] = bit_identical
    assert bit_identical, (
        "optimized execution diverged on an unoptimized-equivalent plan"
    )
