"""Figure 4(b): query-evaluation loss over time (paper §5.3).

Both evaluators consume the *same* sample sequence (identical seeds);
only query-execution strategy differs.  The paper's headline: "the
efficient evaluator nearly zeroes the error before the naive approach
can even half the error" (on 1M tuples; default repro scale 25k).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    QUERY1,
    fmt_seconds,
    make_task,
    print_header,
    print_series,
    reference_marginals,
    run_with_trace,
    scale_factor,
)

NUM_TOKENS = 25_000
STEPS_PER_SAMPLE = 100
NUM_SAMPLES = 100


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_loss_over_time(benchmark):
    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        truths = reference_marginals(
            task, [QUERY1], num_chains=2, samples_per_chain=120
        )
        traces = {}
        for kind in ("naive", "materialized"):
            evaluator = task.make_instance(77).evaluator([QUERY1], kind)
            traces[kind] = run_with_trace(evaluator, truths, NUM_SAMPLES)
        return {
            kind: trace.normalized_trace(0) for kind, trace in traces.items()
        }

    normalized = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header("Figure 4(b): normalized loss vs time, Query 1")
    for kind, points in normalized.items():
        sampled = points[:: max(1, len(points) // 12)]
        print_series(f"{kind:12s}", [(round(t, 3), round(l, 4)) for t, l in sampled])

    naive = normalized["naive"]
    materialized = normalized["materialized"]

    def time_to(points, target):
        for elapsed, loss in points:
            if loss <= target:
                return elapsed
        return float("inf")

    def loss_at(points, when):
        value = points[0][1]
        for elapsed, loss in points:
            if elapsed > when:
                break
            value = loss
        return value

    naive_half_time = time_to(naive, 0.5)
    mat_loss_then = loss_at(materialized, naive_half_time)
    print(
        f"naive halves its loss at {fmt_seconds(naive_half_time)}; "
        f"materialized loss at that moment: {mat_loss_then:.3f} of peak"
    )
    print(
        "Paper: the materialized evaluator nearly zeroes the error before "
        "the naive evaluator halves it."
    )
    benchmark.extra_info["naive"] = naive
    benchmark.extra_info["materialized"] = materialized

    # Shape assertions: same sample count, materialized finishes sooner,
    # and is strictly ahead at the moment naive halves its loss.
    assert naive[-1][0] > materialized[-1][0], (
        "identical samples must take longer for the naive evaluator"
    )
    assert mat_loss_then <= 0.5, (
        "materialized should already be at/below half loss when naive "
        "gets there"
    )
