"""Ablation: query-targeted proposal distributions (§4.1, future work).

The paper suggests injecting query-specific knowledge into the proposal
distribution when "a query might target an isolated subset of the
database".  Query 4 is exactly that: only documents containing "Boston"
can contribute answer tuples.  This bench compares a global uniform
proposer against a mixture that focuses 80% of proposals on the
relevant documents, measuring Query 4 loss at a fixed walk budget.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    QUERY4,
    make_task,
    print_header,
    print_table,
    reference_marginals,
    scale_factor,
)
from repro.db import plan_query
from repro.mcmc import (
    MarkovChain,
    MetropolisHastings,
    MixtureProposer,
    UniformLabelProposer,
    relevant_variables,
)
from repro.core import MaterializedEvaluator, squared_error

NUM_TOKENS = 8_000
STEPS_PER_SAMPLE = 200
NUM_SAMPLES = 100
FOCUS = 0.8


def _boston_docs(model) -> set:
    docs = set()
    for doc, variables in model.groups.items():
        if any(model.string_of(v) == "Boston" for v in variables):
            docs.add(doc)
    return docs


@pytest.mark.benchmark(group="targeted")
def test_targeted_vs_global_proposals(benchmark):
    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), corpus_seed=3, steps_per_sample=STEPS_PER_SAMPLE,
            scheduled=False,
        )
        truth = reference_marginals(
            task, [QUERY4], num_chains=2, samples_per_chain=400
        )[0]
        rows = {}
        for name in ("global-uniform", "query-targeted"):
            instance = task.make_instance(61)
            model = instance.model
            if name == "query-targeted":
                docs = _boston_docs(model)
                plan = plan_query(instance.db, QUERY4)
                target_tokens = {
                    var.name for d in docs for var in model.groups[d]
                }
                targets = relevant_variables(
                    plan,
                    model.variables,
                    extra_filter=lambda v: v.name in target_tokens,
                )
                proposer = MixtureProposer(
                    UniformLabelProposer(targets),
                    UniformLabelProposer(model.variables),
                    focus=FOCUS,
                )
                fraction = len(targets) / len(model.variables)
            else:
                proposer = UniformLabelProposer(model.variables)
                fraction = 1.0
            kernel = MetropolisHastings(model.graph, proposer, seed=17)
            chain = MarkovChain(kernel, STEPS_PER_SAMPLE)
            evaluator = MaterializedEvaluator(instance.db, chain, [QUERY4])
            result = evaluator.run(NUM_SAMPLES)
            rows[name] = {
                "loss": squared_error(result.marginals.probabilities(), truth),
                "target_fraction": fraction,
            }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header("Query-targeted proposals (§4.1): Query 4 at fixed budget")
    print_table(
        ["proposer", "targeted fraction of vars", "squared loss vs reference"],
        [
            (name, f'{d["target_fraction"]:.3f}', f'{d["loss"]:.4f}')
            for name, d in rows.items()
        ],
    )
    print(
        "Paper §4.1: a proposal distribution aware that the query targets "
        "an isolated subset only has to sample that subset."
    )
    benchmark.extra_info["rows"] = rows

    assert (
        rows["query-targeted"]["loss"] <= rows["global-uniform"]["loss"] * 1.1
    ), "focusing proposals on query-relevant documents must not hurt"
