#!/usr/bin/env python
"""CI gate for the fault-recovery acceptance criterion.

Reads a pytest-benchmark JSON produced by::

    pytest benchmarks/bench_fault_recovery.py \\
        --benchmark-json=BENCH_fault_recovery.json

and fails (exit 1) when checkpoint-resume is not at least
``--min-speedup`` times faster than snapshot-rebuild at bringing a
killed worker's chain back to query-ready marginals at the 40k-token
NER scale.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Single source of truth for the gate; bench_fault_recovery.py imports
# this for its in-test assertion and CI uses the script's default, so
# one edit moves every enforcement point.
MIN_FAULT_RECOVERY_SPEEDUP = 5.0


def series_means(report: dict) -> dict[str, float]:
    """series name -> mean seconds for the fault-recovery group."""
    out: dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        if bench.get("group") != "fault-recovery":
            continue
        series = bench.get("extra_info", {}).get("series")
        if series:
            out[series] = bench["stats"]["mean"]
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_FAULT_RECOVERY_SPEEDUP,
        help=(
            "smallest allowed rebuild/resume mean-time ratio "
            f"(default {MIN_FAULT_RECOVERY_SPEEDUP})"
        ),
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text(encoding="utf-8"))
    means = series_means(report)
    missing = {"checkpoint_resume", "snapshot_rebuild"} - means.keys()
    if missing:
        print(f"fault-recovery series missing from report: {sorted(missing)}")
        return 1
    speedup = means["snapshot_rebuild"] / means["checkpoint_resume"]
    print(
        f"checkpoint-resume {means['checkpoint_resume'] * 1e3:.2f}ms vs "
        f"snapshot-rebuild {means['snapshot_rebuild'] * 1e3:.2f}ms "
        f"-> {speedup:.1f}x (gate: >= {args.min_speedup}x)"
    )
    if speedup < args.min_speedup:
        print("FAIL: checkpoint-resume advantage below the gate")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
