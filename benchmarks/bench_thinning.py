"""Ablation: the thinning interval k (§4.1).

"It is prudent to increase independence by collecting tuple counts only
every k samples ... choosing k is an open and interesting domain-
specific problem" — and §4.1 notes the balance between sample
dependency and per-sample query cost.  This bench fixes a total
walk-step budget and varies k: small k spends time on query evaluations
of near-duplicate worlds; large k wastes well-mixed samples.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    QUERY1,
    fmt_seconds,
    make_task,
    print_header,
    print_table,
    reference_marginals,
    scale_factor,
)
from repro.core import squared_error
from repro.ie.ner import NerTask

NUM_TOKENS = 5_000
TOTAL_STEPS = 60_000
K_VALUES = [50, 200, 1000, 5000]


@pytest.mark.benchmark(group="thinning")
def test_thinning_tradeoff(benchmark):
    def experiment():
        base_task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=200
        )
        truth = reference_marginals(
            base_task, [QUERY1], num_chains=2, samples_per_chain=400
        )[0]
        rows = []
        for k in K_VALUES:
            task = make_task(NUM_TOKENS * scale_factor(), steps_per_sample=k)
            evaluator = task.make_instance(41).evaluator([QUERY1], "naive")
            result = evaluator.run(TOTAL_STEPS // k)
            rows.append(
                {
                    "k": k,
                    "samples": TOTAL_STEPS // k,
                    "elapsed": result.wall_elapsed,
                    "loss": squared_error(
                        result.marginals.probabilities(), truth
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header("Thinning interval k: fixed walk budget, naive evaluator")
    print_table(
        ["k", "samples", "wall clock", "squared loss vs reference"],
        [
            (r["k"], r["samples"], fmt_seconds(r["elapsed"]), f'{r["loss"]:.4f}')
            for r in rows
        ],
    )
    print(
        "Small k: many query executions on correlated worlds (cost without "
        "information); large k: few samples from the same walk.  The paper "
        "used k=10,000 at 10M tuples."
    )
    benchmark.extra_info["rows"] = rows

    # Small k costs strictly more wall clock for the same walk budget.
    assert rows[0]["elapsed"] > rows[-1]["elapsed"]
