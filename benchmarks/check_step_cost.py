#!/usr/bin/env python
"""CI gate for the §5.3 constant-step-cost claim.

Reads a pytest-benchmark JSON produced by::

    pytest benchmarks/bench_step_cost.py --benchmark-json=BENCH_step_cost.json

and fails (exit 1) when the mean per-step time of the cached walk at
the largest database size exceeds ``--max-ratio`` times the smallest
size's — i.e. when walk-step cost has started scaling with the data.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Single source of truth for the gate; bench_step_cost.py imports this
# for its in-test assertion and CI uses the script's default, so one
# edit moves every enforcement point.
MAX_STEP_COST_RATIO = 3.0


def per_step_means(report: dict) -> dict[int, float]:
    """tokens -> mean seconds per walk-step, cached series only."""
    out: dict[int, float] = {}
    for bench in report.get("benchmarks", []):
        info = bench.get("extra_info", {})
        if bench.get("group") != "step-cost" or not info.get("cached"):
            continue
        out[int(info["tokens"])] = bench["stats"]["mean"] / int(info["steps"])
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=MAX_STEP_COST_RATIO,
        help=(
            "largest allowed large/small per-step time ratio "
            f"(default {MAX_STEP_COST_RATIO})"
        ),
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text(encoding="utf-8"))
    means = per_step_means(report)
    if len(means) < 2:
        print(
            f"error: need cached step-cost series at >=2 sizes, found {sorted(means)}",
            file=sys.stderr,
        )
        return 2

    small, large = min(means), max(means)
    ratio = means[large] / means[small]
    print(
        f"per-step mean: {means[small] * 1e6:.1f}us @ {small} tokens, "
        f"{means[large] * 1e6:.1f}us @ {large} tokens -> ratio {ratio:.2f}x "
        f"(limit {args.max_ratio:.1f}x)"
    )
    if ratio > args.max_ratio:
        print(
            "FAIL: walk-step cost scales with database size "
            "(the §5.3 constant-step-cost claim is broken)",
            file=sys.stderr,
        )
        return 1
    print("OK: walk-step cost is near-constant in database size")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
