#!/usr/bin/env python
"""CI gate for the §5.3 constant-step-cost claim (vectorized hot path).

Reads a pytest-benchmark JSON produced by::

    pytest benchmarks/bench_step_cost.py --benchmark-json=BENCH_step_cost.json

and fails (exit 1) when either

* the mean per-step time of the *vectorized* walk at the largest
  database size exceeds ``--max-ratio`` times the smallest size's —
  i.e. walk-step cost has started scaling with the data; or
* the in-bench vectorized-vs-dict comparison
  (``test_step_cost_vectorized_vs_dict``) reports a speedup below
  ``--min-speedup`` — i.e. the array path has regressed to the point
  of not earning its complexity.  This gate is machine-relative (both
  paths run on the same hardware in the same process), unlike the
  absolute us/step reference points recorded in the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Single source of truth for the gates; bench_step_cost.py imports
# these for its in-test assertions and CI uses the script's defaults,
# so one edit moves every enforcement point.  The ratio was 3.0 while
# the dict path was the hot path; the steady-state vectorized walk
# measures ~1.4x (2k -> 40k tokens), so 2.0 holds comfortable slack
# without ever re-admitting size-proportional scoring.
MAX_STEP_COST_RATIO = 2.0
# Measured ~1.9-3x depending on blanket-cache hit rates; 1.5 is the
# floor under which the array path is not earning its keep.
MIN_VECTORIZED_SPEEDUP = 1.5


def per_step_means(report: dict) -> dict[int, float]:
    """tokens -> mean seconds per walk-step, vectorized series only."""
    out: dict[int, float] = {}
    for bench in report.get("benchmarks", []):
        info = bench.get("extra_info", {})
        if bench.get("group") != "step-cost" or info.get("mode") != "vectorized":
            continue
        out[int(info["tokens"])] = bench["stats"]["mean"] / int(info["steps"])
    return out


def vectorized_speedup(report: dict) -> float | None:
    """The in-bench vectorized-vs-dict speedup, if recorded."""
    for bench in report.get("benchmarks", []):
        if bench.get("group") != "step-cost-vectorized":
            continue
        speedup = bench.get("extra_info", {}).get("speedup_vs_dict")
        if speedup is not None:
            return float(speedup)
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=MAX_STEP_COST_RATIO,
        help=(
            "largest allowed large/small per-step time ratio "
            f"(default {MAX_STEP_COST_RATIO})"
        ),
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_VECTORIZED_SPEEDUP,
        help=(
            "smallest allowed vectorized-vs-dict speedup "
            f"(default {MIN_VECTORIZED_SPEEDUP})"
        ),
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text(encoding="utf-8"))
    means = per_step_means(report)
    if len(means) < 2:
        print(
            f"error: need vectorized step-cost series at >=2 sizes, "
            f"found {sorted(means)}",
            file=sys.stderr,
        )
        return 2

    failed = False
    small, large = min(means), max(means)
    ratio = means[large] / means[small]
    print(
        f"per-step mean: {means[small] * 1e6:.1f}us @ {small} tokens, "
        f"{means[large] * 1e6:.1f}us @ {large} tokens -> ratio {ratio:.2f}x "
        f"(limit {args.max_ratio:.1f}x)"
    )
    if ratio > args.max_ratio:
        print(
            "FAIL: walk-step cost scales with database size "
            "(the §5.3 constant-step-cost claim is broken)",
            file=sys.stderr,
        )
        failed = True

    speedup = vectorized_speedup(report)
    if speedup is None:
        print(
            "error: no vectorized-vs-dict speedup recorded "
            "(test_step_cost_vectorized_vs_dict missing from the report)",
            file=sys.stderr,
        )
        return 2
    print(
        f"vectorized-vs-dict speedup: {speedup:.2f}x "
        f"(floor {args.min_speedup:.1f}x)"
    )
    if speedup < args.min_speedup:
        print(
            "FAIL: array-backed scoring no longer beats the dict path",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("OK: walk-step cost is near-constant and the array path holds its edge")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
