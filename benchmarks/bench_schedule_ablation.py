"""Ablation: the document-batch proposal schedule (§5.1).

The paper's jump function repeats 2000 proposals over a batch of up to
five documents before loading a fresh batch.  Against a global uniform
proposer, batching concentrates proposals so whole documents are
decoded together (locality for cache/disk in the original system); a
global proposer spreads the same budget thinly.  This bench compares
token accuracy at a fixed walk budget.
"""

from __future__ import annotations

import pytest

from repro.bench import make_task, print_header, print_table, scale_factor

NUM_TOKENS = 6_000
WALK_STEPS = 40_000


@pytest.mark.benchmark(group="schedule")
def test_batch_schedule_vs_global_uniform(benchmark):
    def experiment():
        rows = {}
        for name, scheduled in (("global-uniform", False), ("doc-batches", True)):
            task = make_task(
                NUM_TOKENS * scale_factor(),
                corpus_seed=8,
                steps_per_sample=WALK_STEPS,
                scheduled=scheduled,
            )
            instance = task.make_instance(21)
            instance.kernel.run(WALK_STEPS)
            rows[name] = {
                "accuracy": instance.model.accuracy_against_truth(),
                # Effective rate: no-op self-transitions excluded, so the
                # number reflects how often the chain actually moves.
                "acceptance": instance.kernel.stats.effective_acceptance_rate,
                "noops": instance.kernel.stats.noops,
            }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header("Proposal schedule ablation (paper §5.1 regime)")
    print_table(
        ["schedule", "token accuracy", "effective acceptance", "noops"],
        [
            (name, f'{d["accuracy"]:.3f}', f'{d["acceptance"]:.3f}', d["noops"])
            for name, d in rows.items()
        ],
    )
    print(
        "Paper: 2000 proposals per batch of ≤5 documents, batches drawn "
        "uniformly at random; the active variable set stays small "
        "regardless of database size."
    )
    benchmark.extra_info["rows"] = rows

    # Both schedules must reach a usable decode; batching should not
    # lose accuracy at equal budget.
    assert rows["doc-batches"]["accuracy"] > 0.5
    assert (
        rows["doc-batches"]["accuracy"]
        >= rows["global-uniform"]["accuracy"] - 0.05
    )
