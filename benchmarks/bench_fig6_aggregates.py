"""Figure 6: aggregate query evaluation (paper §5.5).

Normalized squared loss over time for the two aggregate queries —
Query 2 (global person-mention count; converges rapidly thanks to the
peaked answer distribution) and Query 3 (documents with equal PER and
ORG counts, via correlated subqueries; converges at a respectable
rate).  Sampling handles both without closing the representation under
aggregation — the point of §4's query-agnostic design.

Paper scale: 1M tuples.  Default repro scale: 10k tokens.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    QUERY2,
    QUERY3,
    make_task,
    print_header,
    print_series,
    reference_marginals,
    run_with_trace,
    scale_factor,
)

NUM_TOKENS = 10_000
STEPS_PER_SAMPLE = 200
NUM_SAMPLES = 250


@pytest.mark.benchmark(group="fig6")
def test_fig6_aggregate_queries(benchmark):
    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        truths = reference_marginals(
            task, [QUERY2, QUERY3], num_chains=2, samples_per_chain=150
        )
        evaluator = task.make_instance(55).evaluator(
            [QUERY2, QUERY3], "materialized"
        )
        trace = run_with_trace(evaluator, truths, NUM_SAMPLES)
        return {
            "query2": trace.normalized_trace(0),
            "query3": trace.normalized_trace(1),
        }

    traces = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header("Figure 6: normalized loss over time for aggregate queries")
    for name, points in traces.items():
        sampled = points[:: max(1, len(points) // 12)]
        print_series(name, [(round(t, 3), round(l, 4)) for t, l in sampled])
    print(
        "Paper: Query 2 rapidly converges toward zero loss; Query 3 "
        "converges at a respectable rate."
    )
    benchmark.extra_info.update(traces)

    # Shape assertions: both queries improve; Query 2 ends very low.
    for name, points in traces.items():
        assert points[-1][1] < points[0][1] or points[0][1] == 0.0, (
            f"{name} loss should decrease over time"
        )
    assert traces["query2"][-1][1] < 0.3, "Query 2 should approach zero loss"
