#!/usr/bin/env python
"""CI gate for the query-planner acceptance criteria (ISSUE 10).

Reads a pytest-benchmark JSON produced by::

    pytest benchmarks/bench_query_planner.py \
        --benchmark-json=BENCH_query_planner.json

and fails (exit 1) when either

* the optimized-vs-unoptimized speedup on the selective
  ``DOC_ID = 0`` query falls below ``--min-speedup`` — i.e. factor-graph
  pruning stopped paying for itself (the certified restriction should
  shrink the sampled variable set and the thinning interval by roughly
  the document fraction, ~1/300 at 40k tokens); or
* the in-bench bit-identity check on an unoptimized-equivalent plan
  (uncertain-only predicate, no restriction possible) did not report
  exact agreement — i.e. plan rewriting changed answers.

Both comparisons are machine-relative: the two series run on the same
hardware in the same process, so the gate is stable across CI runners.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Single source of truth for the gates; bench_query_planner.py imports
# these for its in-test assertions and CI uses the script's defaults,
# so one edit moves every enforcement point.  Measured ~9-14x at the
# 40k-token / ~330-document scale (the restricted chain takes ~1/330 of
# the steps per sample; fixed per-query evaluation costs absorb the
# rest); 5.0 is the acceptance floor from the issue and still holds
# under heavy scale-down via REPRO_SCALE.
MIN_PLANNER_SPEEDUP = 5.0
# Pruned and full chains are different, equally valid, samplers of the
# same posterior; same-chain window-to-window noise on this workload
# measures ~0.11 mean absolute marginal difference, so 0.30 separates
# "MCMC noise" from "wrong posterior" with margin.
MAX_MEAN_MARGINAL_DIFF = 0.30


def planner_speedup(report: dict) -> float | None:
    """The optimized-vs-unoptimized speedup, if recorded."""
    for bench in report.get("benchmarks", []):
        if bench.get("group") != "query-planner":
            continue
        speedup = bench.get("extra_info", {}).get("speedup")
        if speedup is not None:
            return float(speedup)
    return None


def bit_identical(report: dict) -> bool | None:
    """The in-bench bit-identity verdict, if recorded."""
    for bench in report.get("benchmarks", []):
        if bench.get("group") != "query-planner-bit-identity":
            continue
        verdict = bench.get("extra_info", {}).get("bit_identical")
        if verdict is not None:
            return bool(verdict)
    return None


def mean_marginal_diff(report: dict) -> float | None:
    """The pruned-vs-full mean marginal deviation, if recorded."""
    for bench in report.get("benchmarks", []):
        if bench.get("group") != "query-planner":
            continue
        diff = bench.get("extra_info", {}).get("mean_marginal_diff")
        if diff is not None:
            return float(diff)
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_PLANNER_SPEEDUP,
        help=(
            "smallest allowed optimized-vs-unoptimized speedup "
            f"(default {MIN_PLANNER_SPEEDUP})"
        ),
    )
    parser.add_argument(
        "--max-marginal-diff",
        type=float,
        default=MAX_MEAN_MARGINAL_DIFF,
        help=(
            "largest allowed pruned-vs-full mean marginal difference "
            f"(default {MAX_MEAN_MARGINAL_DIFF})"
        ),
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text(encoding="utf-8"))

    speedup = planner_speedup(report)
    if speedup is None:
        print(
            "error: no planner speedup recorded "
            "(test_selective_query_planner_speedup missing from the report)",
            file=sys.stderr,
        )
        return 2

    failed = False
    print(
        f"planner speedup on the selective query: {speedup:.1f}x "
        f"(floor {args.min_speedup:.1f}x)"
    )
    if speedup < args.min_speedup:
        print(
            "FAIL: factor-graph pruning no longer pays for itself "
            "on selective deterministic predicates",
            file=sys.stderr,
        )
        failed = True

    diff = mean_marginal_diff(report)
    if diff is None:
        print(
            "error: no pruned-vs-full marginal deviation recorded",
            file=sys.stderr,
        )
        return 2
    print(
        f"pruned-vs-full mean marginal diff: {diff:.3f} "
        f"(limit {args.max_marginal_diff:.2f})"
    )
    if diff > args.max_marginal_diff:
        print(
            "FAIL: the restricted chain samples a different posterior",
            file=sys.stderr,
        )
        failed = True

    verdict = bit_identical(report)
    if verdict is None:
        print(
            "error: no bit-identity verdict recorded "
            "(test_unoptimized_equivalent_plans_are_bit_identical missing)",
            file=sys.stderr,
        )
        return 2
    print(f"unoptimized-equivalent bit identity: {'EXACT' if verdict else 'DIVERGED'}")
    if not verdict:
        print(
            "FAIL: plan rewriting changed answers on an "
            "unoptimized-equivalent query",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("OK: the planner is fast where it can be and exact where it must be")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
