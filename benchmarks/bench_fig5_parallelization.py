"""Figure 5: parallelizing query evaluation (paper §5.4).

Squared error of the pooled marginal estimate as a function of the
number of independent chains (1..8), each run for a fixed per-chain
sample budget against ground truth from separate long chains, compared
with the ideal linear improvement ``error(1) / n``.

The paper observed super-linear gains (samples across chains are more
independent than within a chain).  Chains here execute sequentially —
Fig. 5 measures statistical efficiency, not wall-clock (DESIGN.md
substitutions).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    QUERY1,
    make_task,
    print_header,
    print_table,
    reference_marginals,
    scale_factor,
)
from repro.core import ParallelEvaluator, squared_error

NUM_TOKENS = 2_000
STEPS_PER_SAMPLE = 200
SAMPLES_PER_CHAIN = 60
# Each chain discards its initial transient so the remaining error is
# variance-dominated — the regime of the paper's Fig. 5, whose chains
# ran 10^6 steps each.  Pooling chains then divides the variance.
BURN_IN = 120
MAX_CHAINS = 8


@pytest.mark.benchmark(group="fig5")
def test_fig5_parallel_chains(benchmark):
    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        truth = reference_marginals(
            task, [QUERY1], num_chains=4, samples_per_chain=400
        )[0]
        errors = []
        for num_chains in range(1, MAX_CHAINS + 1):
            parallel = ParallelEvaluator(
                task.chain_factory(base_seed=500), [QUERY1], num_chains
            )
            result = parallel.run(SAMPLES_PER_CHAIN, burn_in=BURN_IN)
            errors.append(
                squared_error(result.marginals.probabilities(), truth)
            )
        return errors

    errors = benchmark.pedantic(experiment, rounds=1, iterations=1)

    ideal = [errors[0] / n for n in range(1, MAX_CHAINS + 1)]
    print_header("Figure 5: squared error vs number of chains (Query 1)")
    print_table(
        ["chains", "squared error", "ideal linear", "vs ideal"],
        [
            (n + 1, f"{errors[n]:.5f}", f"{ideal[n]:.5f}",
             f"{errors[n] / ideal[n]:.2f}x" if ideal[n] > 0 else "-")
            for n in range(MAX_CHAINS)
        ],
    )
    print(
        "Paper: two chains nearly halve the loss; eight chains reduce error "
        "by slightly more than 8x (super-linear)."
    )
    benchmark.extra_info["errors"] = errors
    benchmark.extra_info["ideal"] = ideal

    # Shape assertions: more chains help substantially.
    assert errors[-1] < errors[0], "8 chains must beat 1 chain"
    assert errors[-1] < errors[0] / 2, "8 chains should at least halve the error"
