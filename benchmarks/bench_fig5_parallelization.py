"""Figure 5: parallelizing query evaluation (paper §5.4).

Two measurements:

1. **Statistical efficiency** — squared error of the pooled marginal
   estimate as a function of the number of independent chains (1..8),
   each run for a fixed per-chain sample budget against ground truth
   from separate long chains, compared with the ideal linear
   improvement ``error(1) / n``.  The paper observed super-linear gains
   (samples across chains are more independent than within a chain).
   This is scheduling-independent, so it runs on the sequential
   backend.

2. **Wall-clock speedup** — the same pooled evaluation executed by the
   ``process`` backend (one OS process per chain) versus the
   ``sequential`` backend.  ``EvaluationResult`` now separates
   ``wall_elapsed`` (caller-observed) from ``cpu_elapsed`` (summed
   per-chain compute), so the realized speedup is
   ``cpu_elapsed / wall_elapsed``; on a single-core box it degrades
   toward 1x while the pooled marginals stay bit-identical to the
   sequential run.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import (
    QUERY1,
    make_task,
    print_header,
    print_table,
    reference_marginals,
    scale_factor,
)
from repro.core import ParallelEvaluator, squared_error

NUM_TOKENS = 2_000
STEPS_PER_SAMPLE = 200
SAMPLES_PER_CHAIN = 60
# Each chain discards its initial transient so the remaining error is
# variance-dominated — the regime of the paper's Fig. 5, whose chains
# ran 10^6 steps each.  Pooling chains then divides the variance.
BURN_IN = 120
MAX_CHAINS = 8
SPEEDUP_CHAINS = 4


@pytest.mark.benchmark(group="fig5")
def test_fig5_parallel_chains(benchmark):
    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        truth = reference_marginals(
            task, [QUERY1], num_chains=4, samples_per_chain=400
        )[0]
        errors = []
        for num_chains in range(1, MAX_CHAINS + 1):
            parallel = ParallelEvaluator(
                task.chain_factory(base_seed=500), [QUERY1], num_chains
            )
            result = parallel.run(SAMPLES_PER_CHAIN, burn_in=BURN_IN)
            errors.append(
                squared_error(result.marginals.probabilities(), truth)
            )
        return errors

    errors = benchmark.pedantic(experiment, rounds=1, iterations=1)

    ideal = [errors[0] / n for n in range(1, MAX_CHAINS + 1)]
    print_header("Figure 5: squared error vs number of chains (Query 1)")
    print_table(
        ["chains", "squared error", "ideal linear", "vs ideal"],
        [
            (n + 1, f"{errors[n]:.5f}", f"{ideal[n]:.5f}",
             f"{errors[n] / ideal[n]:.2f}x" if ideal[n] > 0 else "-")
            for n in range(MAX_CHAINS)
        ],
    )
    print(
        "Paper: two chains nearly halve the loss; eight chains reduce error "
        "by slightly more than 8x (super-linear)."
    )
    benchmark.extra_info["errors"] = errors
    benchmark.extra_info["ideal"] = ideal

    # Shape assertions: more chains help substantially.
    assert errors[-1] < errors[0], "8 chains must beat 1 chain"
    assert errors[-1] < errors[0] / 2, "8 chains should at least halve the error"


@pytest.mark.benchmark(group="fig5")
def test_fig5_process_backend_speedup(benchmark):
    """Real multiprocess execution: wall vs summed-CPU time, and
    bit-identical pooled marginals across backends."""

    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        rows = {}
        for backend in ("sequential", "process"):
            parallel = ParallelEvaluator(
                task.chain_factory(base_seed=500),
                [QUERY1],
                SPEEDUP_CHAINS,
                backend=backend,
            )
            result = parallel.run(SAMPLES_PER_CHAIN, burn_in=BURN_IN)
            rows[backend] = {
                "wall": result.wall_elapsed,
                "cpu": result.cpu_elapsed,
                "marginals": result.marginals.probabilities(),
            }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header(
        f"Figure 5 follow-on: {SPEEDUP_CHAINS}-chain wall-clock, "
        f"{os.cpu_count()} CPUs available"
    )
    print_table(
        ["backend", "wall (s)", "summed CPU (s)", "cpu/wall"],
        [
            (
                name,
                f"{d['wall']:.2f}",
                f"{d['cpu']:.2f}",
                f"{d['cpu'] / d['wall']:.2f}x" if d["wall"] > 0 else "-",
            )
            for name, d in rows.items()
        ],
    )
    speedup = (
        rows["sequential"]["wall"] / rows["process"]["wall"]
        if rows["process"]["wall"] > 0
        else float("inf")
    )
    print(f"process-backend wall-clock speedup over sequential: {speedup:.2f}x")
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cpus"] = os.cpu_count()

    # Correctness is hardware-independent: both backends pool the exact
    # same samples, so the marginals must be identical.
    assert rows["sequential"]["marginals"] == rows["process"]["marginals"]
    # Direction-only sanity (robust on loaded machines): a single
    # sequential process cannot burn more CPU seconds than wall seconds.
    seq = rows["sequential"]
    assert 0 < seq["cpu"] <= seq["wall"] * 1.05
