"""Figure 5: parallelizing query evaluation (paper §5.4).

Two measurements:

1. **Statistical efficiency** — squared error of the pooled marginal
   estimate as a function of the number of independent chains (1..8),
   each run for a fixed per-chain sample budget against ground truth
   from separate long chains, compared with the ideal linear
   improvement ``error(1) / n``.  The paper observed super-linear gains
   (samples across chains are more independent than within a chain).
   This is scheduling-independent, so it runs on the sequential
   backend.

2. **Wall-clock speedup** — the same pooled evaluation executed by the
   ``process`` backend (one OS process per chain) versus the
   ``sequential`` backend.  ``EvaluationResult`` now separates
   ``wall_elapsed`` (caller-observed) from ``cpu_elapsed`` (summed
   per-chain compute), so the realized speedup is
   ``cpu_elapsed / wall_elapsed``; on a single-core box it degrades
   toward 1x while the pooled marginals stay bit-identical to the
   sequential run.

3. **Data-parallel sharding** — the paper's other Fig. 5 axis: the
   database is partitioned by document into K self-contained shards,
   one factor graph + chain per shard, with each shard's thinning
   interval scaled to ``k/K`` so the *total* MH walk effort (and the
   per-token sampling effort) matches the unsharded chain.  Each shard
   is then 1/K of the work.  Two speedups are reported:

   * ``realized wall`` — what this machine observes running the K
     worker processes concurrently; approaches K× only with ≥ K idle
     cores (on a single-core box it stays near 1×);
   * ``data-parallel (critical path)`` — unsharded compute seconds
     divided by the *slowest shard's own* compute seconds (each worker
     measures ``time.process_time``, which excludes time-slicing, so
     this is the wall clock a K-machine deployment observes and is
     hardware-independent).  This is the number the ≥ 2.5× acceptance
     gate checks at K = 4.

   ``shards=1`` is asserted bit-identical to the unsharded
   MaterializedEvaluator — sharding is an exact decomposition, not an
   approximation, once no factor spans shards.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import (
    QUERY1,
    make_task,
    print_header,
    print_table,
    reference_marginals,
    scale_factor,
)
from repro.core import MaterializedEvaluator, ParallelEvaluator, ShardedEvaluator, squared_error
from repro.db import Database

NUM_TOKENS = 2_000
STEPS_PER_SAMPLE = 200
SAMPLES_PER_CHAIN = 60
# Each chain discards its initial transient so the remaining error is
# variance-dominated — the regime of the paper's Fig. 5, whose chains
# ran 10^6 steps each.  Pooling chains then divides the variance.
BURN_IN = 120
MAX_CHAINS = 8
SPEEDUP_CHAINS = 4

# Sharded series: equal total walk effort at every K (steps per sample
# scale as 1/K), enough samples that per-shard compute dominates timer
# resolution.
SHARD_SERIES = (1, 2, 4)
SHARD_SAMPLES = 200
SHARD_TARGET_SPEEDUP = 2.5


@pytest.mark.benchmark(group="fig5")
def test_fig5_parallel_chains(benchmark):
    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        truth = reference_marginals(
            task, [QUERY1], num_chains=4, samples_per_chain=400
        )[0]
        errors = []
        for num_chains in range(1, MAX_CHAINS + 1):
            parallel = ParallelEvaluator(
                task.chain_factory(base_seed=500), [QUERY1], num_chains
            )
            result = parallel.run(SAMPLES_PER_CHAIN, burn_in=BURN_IN)
            errors.append(
                squared_error(result.marginals.probabilities(), truth)
            )
        return errors

    errors = benchmark.pedantic(experiment, rounds=1, iterations=1)

    ideal = [errors[0] / n for n in range(1, MAX_CHAINS + 1)]
    print_header("Figure 5: squared error vs number of chains (Query 1)")
    print_table(
        ["chains", "squared error", "ideal linear", "vs ideal"],
        [
            (n + 1, f"{errors[n]:.5f}", f"{ideal[n]:.5f}",
             f"{errors[n] / ideal[n]:.2f}x" if ideal[n] > 0 else "-")
            for n in range(MAX_CHAINS)
        ],
    )
    print(
        "Paper: two chains nearly halve the loss; eight chains reduce error "
        "by slightly more than 8x (super-linear)."
    )
    benchmark.extra_info["errors"] = errors
    benchmark.extra_info["ideal"] = ideal

    # Shape assertions: more chains help substantially.
    assert errors[-1] < errors[0], "8 chains must beat 1 chain"
    assert errors[-1] < errors[0] / 2, "8 chains should at least halve the error"


@pytest.mark.benchmark(group="fig5")
def test_fig5_process_backend_speedup(benchmark):
    """Real multiprocess execution: wall vs summed-CPU time, and
    bit-identical pooled marginals across backends."""

    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        rows = {}
        for backend in ("sequential", "process"):
            parallel = ParallelEvaluator(
                task.chain_factory(base_seed=500),
                [QUERY1],
                SPEEDUP_CHAINS,
                backend=backend,
            )
            result = parallel.run(SAMPLES_PER_CHAIN, burn_in=BURN_IN)
            rows[backend] = {
                "wall": result.wall_elapsed,
                "cpu": result.cpu_elapsed,
                "marginals": result.marginals.probabilities(),
            }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_header(
        f"Figure 5 follow-on: {SPEEDUP_CHAINS}-chain wall-clock, "
        f"{os.cpu_count()} CPUs available"
    )
    print_table(
        ["backend", "wall (s)", "summed CPU (s)", "cpu/wall"],
        [
            (
                name,
                f"{d['wall']:.2f}",
                f"{d['cpu']:.2f}",
                f"{d['cpu'] / d['wall']:.2f}x" if d["wall"] > 0 else "-",
            )
            for name, d in rows.items()
        ],
    )
    speedup = (
        rows["sequential"]["wall"] / rows["process"]["wall"]
        if rows["process"]["wall"] > 0
        else float("inf")
    )
    print(f"process-backend wall-clock speedup over sequential: {speedup:.2f}x")
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cpus"] = os.cpu_count()

    # Correctness is hardware-independent: both backends pool the exact
    # same samples, so the marginals must be identical.
    assert rows["sequential"]["marginals"] == rows["process"]["marginals"]
    # Direction-only sanity (robust on loaded machines): a single
    # sequential process cannot burn more CPU seconds than wall seconds.
    seq = rows["sequential"]
    assert 0 < seq["cpu"] <= seq["wall"] * 1.05


@pytest.mark.benchmark(group="fig5")
def test_fig5_sharded_data_parallel(benchmark):
    """Data-parallel sharding: K document shards, equal total walk
    effort, shards=1 bit-identical to unsharded, and >= 2.5x
    critical-path speedup at K=4 on the process backend."""

    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        rows = {}

        # Unsharded baseline: the exact chain shards=1 will rebuild
        # (same factory, same derived seed), driven in-process.
        factory = task.shard_chain_factory()
        with ShardedEvaluator(
            task._initial,
            factory,
            [QUERY1],
            1,
            base_seed=500,
            backend="process",
        ) as single:
            seed = single.unit_seeds[0]
            db = Database.from_snapshot(task._snapshot, "fig5-unsharded")
            evaluator = MaterializedEvaluator(db, factory(db, seed), [QUERY1])
            wall_started = time.perf_counter()
            cpu_started = time.process_time()
            unsharded = evaluator.run(SHARD_SAMPLES)
            unsharded_cpu = time.process_time() - cpu_started
            unsharded_wall = time.perf_counter() - wall_started
            evaluator.detach()
            rows["unsharded"] = {
                "wall": unsharded_wall,
                "cpu": unsharded_cpu,
                "critical": unsharded_cpu,
                "marginals": unsharded.marginals.probabilities(),
            }

            sharded_one = single.run(SHARD_SAMPLES)
            rows[1] = {
                "wall": sharded_one.wall_elapsed,
                "cpu": sharded_one.cpu_elapsed,
                "critical": max(
                    r.cpu_elapsed for r in single.shard_results
                ),
                "marginals": sharded_one.marginals.probabilities(),
            }

        for num_shards in SHARD_SERIES[1:]:
            # 1/K of the walk per shard: total effort (and per-token
            # sampling effort) matches the unsharded run.
            scaled = task.shard_chain_factory(
                steps_per_sample=STEPS_PER_SAMPLE // num_shards
            )
            with ShardedEvaluator(
                task._initial,
                scaled,
                [QUERY1],
                num_shards,
                base_seed=500,
                backend="process",
            ) as sharded:
                result = sharded.run(SHARD_SAMPLES)
                rows[num_shards] = {
                    "wall": result.wall_elapsed,
                    "cpu": result.cpu_elapsed,
                    "critical": max(
                        r.cpu_elapsed for r in sharded.shard_results
                    ),
                    "marginals": result.marginals.probabilities(),
                }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Like-for-like baseline: the shards=1 critical path is the same
    # chain measured by the same apparatus (a worker's own
    # process_time), so speedups aren't flattered by comparing a
    # heap-warmed parent process against fresh workers.  The in-parent
    # unsharded row stays in the table as the bit-identity anchor.
    base_cpu = rows[1]["critical"]
    base_wall = rows["unsharded"]["wall"]
    print_header(
        f"Figure 5 data-parallel sharding: {SHARD_SAMPLES} samples, equal "
        f"total walk effort, {os.cpu_count()} CPUs available"
    )
    print_table(
        [
            "series",
            "wall (s)",
            "total CPU (s)",
            "critical path (s)",
            "data-parallel speedup",
            "realized wall speedup",
        ],
        [
            (
                name if isinstance(name, str) else f"shards={name}",
                f"{d['wall']:.2f}",
                f"{d['cpu']:.2f}",
                f"{d['critical']:.2f}",
                f"{base_cpu / d['critical']:.2f}x",
                f"{base_wall / d['wall']:.2f}x",
            )
            for name, d in rows.items()
        ],
    )
    print(
        "critical path = slowest shard's own process_time: the wall a "
        "K-machine deployment observes.  Realized wall speedup needs >= K "
        "idle cores to approach it."
    )

    speedups = {
        k: base_cpu / rows[k]["critical"] for k in SHARD_SERIES
    }
    benchmark.extra_info["num_cpus"] = os.cpu_count()
    benchmark.extra_info["samples"] = SHARD_SAMPLES
    benchmark.extra_info["series"] = {
        str(name): {
            "wall_seconds": d["wall"],
            "total_cpu_seconds": d["cpu"],
            "critical_path_seconds": d["critical"],
        }
        for name, d in rows.items()
    }
    benchmark.extra_info["data_parallel_speedup"] = {
        str(k): speedups[k] for k in SHARD_SERIES
    }
    benchmark.extra_info["realized_wall_speedup"] = {
        str(k): base_wall / rows[k]["wall"] for k in SHARD_SERIES
    }
    benchmark.extra_info["shards1_bit_identical"] = (
        rows[1]["marginals"] == rows["unsharded"]["marginals"]
    )

    # Exactness: shards=1 rebuilds the very same chain — byte-identical
    # marginals, no tolerance.
    assert rows[1]["marginals"] == rows["unsharded"]["marginals"]
    # The acceptance gate: 4-way sharding must cut the critical path by
    # >= 2.5x (hardware-independent: per-shard compute seconds).
    assert speedups[4] >= SHARD_TARGET_SPEEDUP, (
        f"shards=4 data-parallel speedup {speedups[4]:.2f}x < "
        f"{SHARD_TARGET_SPEEDUP}x"
    )
    # More shards never increase the critical path.
    assert rows[4]["critical"] <= rows[2]["critical"] * 1.1
