"""Figure 7 (Appendix 9.1): distribution of the Query 2 answer.

The aggregate answer — the number of B-PER tokens — concentrates
sharply around its posterior mean and looks approximately normal; the
paper credits this concentration of measure for MCMC's rapid
convergence on aggregate queries.  This bench reproduces the histogram
and checks peakedness quantitatively.
"""

from __future__ import annotations

import math

import pytest

from repro.bench import (
    QUERY2,
    make_task,
    print_header,
    print_table,
    scale_factor,
)
from repro.core import ParallelEvaluator

NUM_TOKENS = 5_000
STEPS_PER_SAMPLE = 200
CHAINS = 2
SAMPLES_PER_CHAIN = 300
# The histogram is a *stationary* posterior: discard the transient away
# from the all-'O' initial world before counting.
BURN_IN = 300


@pytest.mark.benchmark(group="fig7")
def test_fig7_query2_histogram(benchmark):
    def experiment():
        task = make_task(
            NUM_TOKENS * scale_factor(), steps_per_sample=STEPS_PER_SAMPLE
        )
        parallel = ParallelEvaluator(
            task.chain_factory(base_seed=700), [QUERY2], CHAINS
        )
        result = parallel.run(SAMPLES_PER_CHAIN, burn_in=BURN_IN)
        return result.marginals.as_histogram(position=0)

    histogram = benchmark.pedantic(experiment, rounds=1, iterations=1)

    mean = sum(value * mass for value, mass in histogram.items())
    variance = sum((value - mean) ** 2 * mass for value, mass in histogram.items())
    std = math.sqrt(variance)
    two_sigma_mass = sum(
        mass for value, mass in histogram.items() if abs(value - mean) <= 2 * std
    )

    print_header("Figure 7: distribution of Query 2 (count of B-PER tokens)")
    # Bin into ~15 buckets for display.
    values = sorted(histogram)
    low, high = values[0], values[-1]
    num_bins = min(15, max(1, len(values)))
    width = max(1, (high - low + 1) // num_bins)
    bins: dict = {}
    for value, mass in histogram.items():
        bin_low = low + ((value - low) // width) * width
        bins[bin_low] = bins.get(bin_low, 0.0) + mass
    print_table(
        ["count range", "probability"],
        [
            (f"[{b}, {b + width})", f"{bins[b]:.4f}")
            for b in sorted(bins)
        ],
    )
    print(f"mean={mean:.1f} std={std:.2f} mass within ±2σ: {two_sigma_mass:.3f}")
    print(
        "Paper: mass clustered around a small subset of the answer set, "
        "approximately normally distributed."
    )
    benchmark.extra_info["histogram"] = {str(k): v for k, v in histogram.items()}
    benchmark.extra_info["mean"] = mean
    benchmark.extra_info["std"] = std

    # Shape assertions: concentration of measure around the mean.
    assert two_sigma_mass > 0.9, "answer mass should concentrate within ±2σ"
    assert std < mean, "distribution should be sharply peaked relative to scale"
