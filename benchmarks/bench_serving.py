"""Serving-layer load benchmark (ISSUE 6 acceptance).

Drives ≥100 concurrent :class:`~repro.serve.session.ServerSession`\\ s
of mixed query/DML traffic against one :class:`ReproServer` over the
NER workload and reports what a service owner cares about:

* p50/p90/p99/max client-observed latency and end-to-end throughput,
* shared marginal-cache hit rate (the multi-tenant win),
* **stale reads** — must be zero: every result's ``db_version`` is at
  least the version the client had observed committed when it issued
  the request, and every deterministic read returns exactly the audit
  rows committed at its version (verified post-hoc against the full
  commit log),
* the aggregated server/session stats (`Session.stats()` +
  `ReproServer.stats()`), printed for inspection.

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/bench_serving.py BENCH_serving.json

Scale knobs: ``REPRO_SCALE`` multiplies the corpus size and per-request
sample counts (default 1); the session/request counts are fixed so the
committed JSON always demonstrates the ≥100-session acceptance bar.
``benchmarks/check_serving.py`` gates the emitted JSON.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro
from repro.ie.ner import NerTask
from repro.serve import ReproServer

SCALE = float(os.environ.get("REPRO_SCALE", "1"))
NUM_TOKENS = max(200, int(1000 * SCALE))
STEPS_PER_SAMPLE = 50
NUM_SESSIONS = 120
OPS_PER_SESSION = 6
SAMPLES = max(2, int(4 * SCALE))
WORKERS = 4

QUERIES = [
    "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'",
    "SELECT STRING FROM TOKEN WHERE LABEL='B-LOC'",
    "SELECT STRING FROM TOKEN WHERE LABEL='B-ORG'",
    "SELECT TOK_ID FROM TOKEN WHERE LABEL='I-PER'",
]


def percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


def build_server() -> ReproServer:
    task = NerTask(NUM_TOKENS, corpus_seed=7, steps_per_sample=STEPS_PER_SAMPLE)
    instance = task.make_instance(chain_seed=11)
    engine = repro.connect(instance.db).attach_model(
        instance, chain_factory=task.chain_factory()
    )
    return ReproServer(
        engine,
        workers=WORKERS,
        cache_size=512,
        max_pending=100_000,
        per_tenant=OPS_PER_SESSION + 1,
        queue_timeout=300.0,
    )


async def run_load(server: ReproServer) -> dict:
    latencies_ms: list[float] = []
    by_kind: dict[str, list[float]] = {}
    audit_versions: list[int] = []
    det_reads: list[tuple[int, int]] = []
    stale_reads = 0
    cache_hits = 0
    probabilistic = 0

    await server.session("init").execute("CREATE TABLE AUDIT (ID INT PRIMARY KEY)")

    async def client(i: int) -> None:
        nonlocal stale_reads, cache_hits, probabilistic
        rng = random.Random(1000 + i)
        session = server.session(f"tenant-{i}")
        for step in range(OPS_PER_SESSION):
            # Two-phase traffic, like a real service: a bursty ingest
            # window (steps 0-1) where commits interleave with reads
            # and keep invalidation/worker-rebasing honest, then a
            # read-mostly steady state where the shared cache earns
            # its keep.  Commits during the burst churn the version
            # faster than a chain run completes, so cache entries only
            # become reusable once the write wave settles — exactly
            # the regime the (fingerprint, version) key is built for.
            roll = rng.random()
            ingest = step < 2
            floor = server.version
            started = time.perf_counter()
            if ingest and roll < 0.25:  # audit commit
                result = await session.execute(
                    f"INSERT INTO AUDIT VALUES ({i * 100 + step})"
                )
                audit_versions.append(result.db_version)
            elif ingest and roll < 0.40:  # model commit (live repair)
                pk = 5_000_000 + i * 100 + step
                result = await session.execute(
                    f"INSERT INTO TOKEN VALUES ({pk}, 0, 'Served{pk}', "
                    "'B-PER', 'B-PER')"
                )
            elif roll < 0.55 if ingest else roll < 0.15:  # snapshot read
                result = await session.execute("SELECT ID FROM AUDIT")
                det_reads.append((result.db_version, len(result.rows)))
            else:  # probabilistic read (shared-cache candidate)
                result = await session.execute(
                    rng.choice(QUERIES), samples=SAMPLES
                )
                probabilistic += 1
                if result.cached:
                    cache_hits += 1
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            latencies_ms.append(elapsed_ms)
            by_kind.setdefault(result.kind, []).append(elapsed_ms)
            if result.db_version < floor:
                stale_reads += 1
        session.close()

    started = time.perf_counter()
    await asyncio.gather(*[client(i) for i in range(NUM_SESSIONS)])
    wall_s = time.perf_counter() - started

    # Post-hoc exactness: a deterministic read at version v must have
    # seen exactly the audit rows committed at versions <= v.
    for version, rows_seen in det_reads:
        expected = sum(1 for v in audit_versions if v <= version)
        if rows_seen != expected:
            stale_reads += 1

    info = server.cache.info()
    lookups = info.hits + info.misses
    return {
        "config": {
            "num_tokens": NUM_TOKENS,
            "steps_per_sample": STEPS_PER_SAMPLE,
            "samples_per_query": SAMPLES,
            "workers": WORKERS,
            "scale": SCALE,
        },
        "sessions": NUM_SESSIONS,
        "requests": len(latencies_ms),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(latencies_ms) / wall_s, 1),
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 3),
            "p90": round(percentile(latencies_ms, 0.90), 3),
            "p99": round(percentile(latencies_ms, 0.99), 3),
            "max": round(max(latencies_ms), 3),
            "mean": round(statistics.fmean(latencies_ms), 3),
        },
        "latency_ms_by_kind": {
            kind: round(percentile(values, 0.50), 3)
            for kind, values in sorted(by_kind.items())
        },
        "cache": {
            "hits": info.hits,
            "misses": info.misses,
            "hit_rate": round(info.hits / lookups, 3) if lookups else 0.0,
            "client_observed_hits": cache_hits,
            "probabilistic_requests": probabilistic,
        },
        "stale_reads": stale_reads,
        "commits": server.commits,
        "shed": {
            "queue_full": server.admission.shed_queue_full,
            "timeout": server.admission.shed_timeout,
            "tenant_cap": server.admission.shed_tenant_cap,
            "shutdown": server.shed_shutdown,
        },
    }


async def main_async() -> dict:
    server = build_server()
    async with server:
        report = await run_load(server)
        # The observability satellite: print the aggregated stats.
        print("== server stats ==")
        print(json.dumps(server.stats(), indent=2, default=str))
    return report


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serving.json"
    report = asyncio.run(main_async())
    print("== load report ==")
    print(json.dumps(report, indent=2))
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
