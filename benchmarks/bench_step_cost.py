"""Ablation: MH walk-step cost is constant in database size (§5.3).

"For the skip-chain CRF ... the time to perform an MCMC walk-step is
constant with respect to the size of the database" — because a proposal
touching one variable evaluates only the constant number of factors
adjacent to it (Appendix 9.2).  This bench times walk-steps at two
database sizes an order of magnitude apart and asserts near-constancy.
"""

from __future__ import annotations

import pytest

from repro.bench import make_task, scale_factor

SIZES = [2_000, 40_000]
STEPS = 2_000


@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="step-cost")
def test_step_cost(benchmark, num_tokens):
    task = make_task(num_tokens, steps_per_sample=STEPS)
    instance = task.make_instance(1)

    def run_steps():
        instance.kernel.run(STEPS)

    benchmark.pedantic(run_steps, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["tokens"] = num_tokens
    benchmark.extra_info["steps"] = STEPS


@pytest.mark.benchmark(group="step-cost-ratio")
def test_step_cost_ratio_is_near_constant(benchmark):
    """Direct assertion of the §5.3 claim (20x the data, ~same step cost)."""
    import time

    def experiment():
        times = {}
        for num_tokens in [s * scale_factor() for s in SIZES]:
            task = make_task(num_tokens, steps_per_sample=STEPS)
            instance = task.make_instance(1)
            instance.kernel.run(500)  # warm caches
            started = time.perf_counter()
            instance.kernel.run(STEPS)
            times[num_tokens] = (time.perf_counter() - started) / STEPS
        return times

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    small, large = [times[s * scale_factor()] for s in SIZES]
    print(
        f"\nper-step: {small * 1e6:.1f}us @ {SIZES[0] * scale_factor()} tokens, "
        f"{large * 1e6:.1f}us @ {SIZES[1] * scale_factor()} tokens "
        f"(ratio {large / small:.2f}x for {SIZES[1] // SIZES[0]}x the data)"
    )
    benchmark.extra_info["per_step_seconds"] = {str(k): v for k, v in times.items()}
    assert large / small < 2.5, "walk-step cost must not scale with DB size"
