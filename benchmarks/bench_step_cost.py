"""Ablation: MH walk-step cost is constant in database size (§5.3).

"For the skip-chain CRF ... the time to perform an MCMC walk-step is
constant with respect to the size of the database" — because a proposal
touching one variable evaluates only the constant number of factors
adjacent to it (Appendix 9.2).  This bench times walk-steps at two
database sizes an order of magnitude apart and asserts near-constancy.

Three series are recorded, one per scoring path:

* ``vectorized`` — the array-backed local scorers
  (:mod:`repro.fg.vectorized`, the default);
* ``dict`` — ``set_vectorized(False)``: the cached per-factor
  reference path (PR-3's hot path);
* ``uncached`` — ``set_caching(False)``: full re-instantiation,
  the pre-overhaul baseline regime.

Protocol: §5.3's claim is about the *steady-state* walk step, so the
cached series are measured at equilibrium — one conditional sweep over
every variable primes the per-variable scorers/score memos (cold
structure is a one-time cost, amortized over the run's lifetime), then
20k settle steps let the blanket caches absorb the walk's equilibrium
label churn, then 5 rounds of 2000 steps are timed.  The identical
protocol runs for ``vectorized`` and ``dict``, so their ratio is a
machine-independent measure of what the array path buys; the absolute
reference points below anchor the committed JSON to this machine.

Reference points (this machine, REPRO_SCALE=1, 40k tokens):
~34.9 us/step pre-overhaul (commit c4d84e2), ~13.8 us/step after
PR-3's caching — both recorded in ``extra_info`` so the committed
``BENCH_step_cost.json`` documents the cumulative reduction; the ISSUE
9 acceptance bar is >=3x under the PR-3 number (<=4.6 us/step).

``test_step_cost_vectorized_vs_dict`` additionally asserts in-bench
that vectorized and dict scoring produce bit-identical marginals under
fixed seeds — the speedup is only admissible evidence if the two paths
are exactly interchangeable.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import QUERY2, make_task, scale_factor

from check_step_cost import MAX_STEP_COST_RATIO, MIN_VECTORIZED_SPEEDUP

SIZES = [2_000, 40_000]
STEPS = 2_000
SETTLE_STEPS = 20_000

# Mean us/step at 40k tokens measured with this file's protocol of the
# day on this machine: the pre-overhaul commit (c4d84e2) and the PR-3
# cached hot path the ISSUE 9 acceptance is benchmarked against.
PRE_OVERHAUL_US_PER_STEP_40K = 34.9
PR3_CACHED_US_PER_STEP_40K = 13.8

MODES = ["vectorized", "dict", "uncached"]


def _make_instance(num_tokens: int, mode: str, chain_seed: int = 1):
    task = make_task(num_tokens, steps_per_sample=STEPS)
    instance = task.make_instance(chain_seed)
    graph = instance.kernel.graph
    if mode == "uncached":
        graph.set_caching(False)
    elif mode == "dict":
        graph.set_vectorized(False)
    return instance


def _steady_instance(num_tokens: int, mode: str, chain_seed: int = 1):
    """An instance warmed to the steady-state regime (cached modes):
    one conditional sweep primes every variable's scorer / factor
    memos, then settle steps equilibrate the blanket caches."""
    instance = _make_instance(num_tokens, mode, chain_seed)
    if mode != "uncached":
        graph = instance.kernel.graph
        for variable in instance.model.variables:
            graph.local_conditional_scores(variable)
        instance.kernel.run(SETTLE_STEPS)
    return instance


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="step-cost")
def test_step_cost(benchmark, num_tokens, mode):
    instance = _steady_instance(num_tokens, mode)

    def run_steps():
        instance.kernel.run(STEPS)

    benchmark.pedantic(run_steps, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["tokens"] = num_tokens
    benchmark.extra_info["steps"] = STEPS
    benchmark.extra_info["mode"] = mode


@pytest.mark.benchmark(group="step-cost-ratio")
def test_step_cost_ratio_is_near_constant(benchmark):
    """Direct assertion of the §5.3 claim (20x the data, ~same step cost)."""

    def experiment():
        times = {}
        for num_tokens in [s * scale_factor() for s in SIZES]:
            instance = _steady_instance(num_tokens, "vectorized")
            instance.kernel.run(STEPS)  # warmup round
            started = time.perf_counter()
            instance.kernel.run(STEPS)
            times[num_tokens] = (time.perf_counter() - started) / STEPS
        return times

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    small, large = [times[s * scale_factor()] for s in SIZES]
    print(
        f"\nper-step: {small * 1e6:.1f}us @ {SIZES[0] * scale_factor()} tokens, "
        f"{large * 1e6:.1f}us @ {SIZES[1] * scale_factor()} tokens "
        f"(ratio {large / small:.2f}x for {SIZES[1] // SIZES[0]}x the data)"
    )
    benchmark.extra_info["per_step_seconds"] = {str(k): v for k, v in times.items()}
    assert large / small < MAX_STEP_COST_RATIO, (
        "walk-step cost must not scale with DB size"
    )


@pytest.mark.benchmark(group="step-cost-vectorized")
def test_step_cost_vectorized_vs_dict(benchmark):
    """The ISSUE 9 acceptance check: at the large size the array path
    beats the dict path under the identical steady-state protocol, and
    the two produce bit-identical marginals."""
    large = SIZES[1] * scale_factor()

    def experiment():
        out = {}
        for mode in ("vectorized", "dict"):
            instance = _steady_instance(large, mode)
            instance.kernel.run(STEPS)  # warmup round
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                instance.kernel.run(STEPS)
                best = min(best, (time.perf_counter() - started) / STEPS)
            out[mode] = best
        return out

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = times["dict"] / times["vectorized"]
    versus_pr3 = (PR3_CACHED_US_PER_STEP_40K / 1e6) / times["vectorized"]
    versus_pre = (PRE_OVERHAUL_US_PER_STEP_40K / 1e6) / times["vectorized"]
    print(
        f"\nvectorized {times['vectorized'] * 1e6:.1f}us/step vs dict "
        f"{times['dict'] * 1e6:.1f}us/step ({speedup:.2f}x); "
        f"{versus_pr3:.2f}x vs PR-3 cached {PR3_CACHED_US_PER_STEP_40K}us, "
        f"{versus_pre:.2f}x vs pre-overhaul {PRE_OVERHAUL_US_PER_STEP_40K}us"
    )
    benchmark.extra_info["per_step_seconds"] = times
    benchmark.extra_info["speedup_vs_dict"] = speedup
    benchmark.extra_info["pr3_cached_us_per_step"] = PR3_CACHED_US_PER_STEP_40K
    benchmark.extra_info["speedup_vs_pr3"] = versus_pr3
    benchmark.extra_info["pre_overhaul_us_per_step"] = PRE_OVERHAUL_US_PER_STEP_40K
    benchmark.extra_info["speedup_vs_pre_overhaul"] = versus_pre
    assert speedup > MIN_VECTORIZED_SPEEDUP, (
        "array-backed scoring must beat the dict path at steady state"
    )

    # Bit-identity: same seeds, same marginals, vectorized or dict.
    marginals = {}
    for mode in ("vectorized", "dict"):
        instance = _make_instance(SIZES[0] * scale_factor(), mode, chain_seed=7)
        evaluator = instance.evaluator([QUERY2])
        evaluator.run(20)
        marginals[mode] = evaluator.estimators[0].probabilities()
    assert marginals["vectorized"] == marginals["dict"], (
        "vectorized inference must be bit-identical to the dict reference"
    )
