"""Ablation: MH walk-step cost is constant in database size (§5.3).

"For the skip-chain CRF ... the time to perform an MCMC walk-step is
constant with respect to the size of the database" — because a proposal
touching one variable evaluates only the constant number of factors
adjacent to it (Appendix 9.2).  This bench times walk-steps at two
database sizes an order of magnitude apart and asserts near-constancy.

Since the hot-path overhaul the walk-step is additionally served by the
static adjacency cache and score memoization
(:meth:`repro.fg.graph.FactorGraph.set_caching`); the ``cached``
parametrization records both series so the committed JSON carries the
before/after comparison, and ``test_step_cost_cached_vs_uncached``
asserts the cache (a) speeds up the walk and (b) leaves sampling
results bit-identical under fixed seeds.

Pre-overhaul reference (commit c4d84e2, this machine, REPRO_SCALE=1):
~34.9 us/step at 40k tokens — recorded in ``extra_info`` so the
committed ``BENCH_step_cost.json`` documents the >=2x reduction.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import QUERY2, make_task, scale_factor

from check_step_cost import MAX_STEP_COST_RATIO

SIZES = [2_000, 40_000]
STEPS = 2_000

# Mean us/step measured at the pre-overhaul commit (c4d84e2) with the
# identical protocol (500 warm-up steps, 2000 timed steps, 40k tokens).
PRE_OVERHAUL_US_PER_STEP_40K = 34.9


def _timed_instance(num_tokens: int, cached: bool, chain_seed: int = 1):
    task = make_task(num_tokens, steps_per_sample=STEPS)
    instance = task.make_instance(chain_seed)
    instance.kernel.graph.set_caching(cached)
    return instance


@pytest.mark.parametrize("cached", [True, False], ids=["cached", "uncached"])
@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="step-cost")
def test_step_cost(benchmark, num_tokens, cached):
    instance = _timed_instance(num_tokens, cached)

    def run_steps():
        instance.kernel.run(STEPS)

    benchmark.pedantic(run_steps, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["tokens"] = num_tokens
    benchmark.extra_info["steps"] = STEPS
    benchmark.extra_info["cached"] = cached


@pytest.mark.benchmark(group="step-cost-ratio")
def test_step_cost_ratio_is_near_constant(benchmark):
    """Direct assertion of the §5.3 claim (20x the data, ~same step cost)."""

    def experiment():
        times = {}
        for num_tokens in [s * scale_factor() for s in SIZES]:
            instance = _timed_instance(num_tokens, cached=True)
            instance.kernel.run(500)  # warm caches
            started = time.perf_counter()
            instance.kernel.run(STEPS)
            times[num_tokens] = (time.perf_counter() - started) / STEPS
        return times

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    small, large = [times[s * scale_factor()] for s in SIZES]
    print(
        f"\nper-step: {small * 1e6:.1f}us @ {SIZES[0] * scale_factor()} tokens, "
        f"{large * 1e6:.1f}us @ {SIZES[1] * scale_factor()} tokens "
        f"(ratio {large / small:.2f}x for {SIZES[1] // SIZES[0]}x the data)"
    )
    benchmark.extra_info["per_step_seconds"] = {str(k): v for k, v in times.items()}
    assert large / small < MAX_STEP_COST_RATIO, (
        "walk-step cost must not scale with DB size"
    )


@pytest.mark.benchmark(group="step-cost-cache")
def test_step_cost_cached_vs_uncached(benchmark):
    """The overhaul's acceptance check: the cached hot path is faster
    at the large size and produces bit-identical marginals."""
    large = SIZES[1] * scale_factor()

    def experiment():
        out = {}
        for cached in (True, False):
            instance = _timed_instance(large, cached)
            instance.kernel.run(500)  # warm caches / match protocols
            started = time.perf_counter()
            instance.kernel.run(STEPS)
            out["cached" if cached else "uncached"] = (
                time.perf_counter() - started
            ) / STEPS
        return out

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = times["uncached"] / times["cached"]
    versus_pre = (PRE_OVERHAUL_US_PER_STEP_40K / 1e6) / times["cached"]
    print(
        f"\ncached {times['cached'] * 1e6:.1f}us/step vs uncached "
        f"{times['uncached'] * 1e6:.1f}us/step ({speedup:.2f}x), "
        f"{versus_pre:.2f}x vs pre-overhaul {PRE_OVERHAUL_US_PER_STEP_40K}us"
    )
    benchmark.extra_info["per_step_seconds"] = times
    benchmark.extra_info["speedup_vs_uncached"] = speedup
    benchmark.extra_info["pre_overhaul_us_per_step"] = PRE_OVERHAUL_US_PER_STEP_40K
    benchmark.extra_info["speedup_vs_pre_overhaul"] = versus_pre
    assert speedup > 1.0, "adjacency cache must not slow the walk down"

    # Bit-identity: same seeds, same marginals, caches on or off.
    marginals = {}
    for cached in (True, False):
        instance = _timed_instance(SIZES[0] * scale_factor(), cached, chain_seed=7)
        evaluator = instance.evaluator([QUERY2])
        evaluator.run(20)
        marginals[cached] = evaluator.estimators[0].probabilities()
    assert marginals[True] == marginals[False], (
        "cached inference must be bit-identical to the uncached reference"
    )
