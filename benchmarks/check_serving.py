#!/usr/bin/env python
"""CI gate for the ISSUE 6 serving acceptance criteria.

Reads the load report produced by::

    PYTHONPATH=src python benchmarks/bench_serving.py BENCH_serving.json

and fails (exit 1) unless the run demonstrates:

* at least ``--min-sessions`` concurrent server sessions of mixed
  query/DML traffic,
* **zero** stale reads (freshness-floor + post-hoc audit violations),
* a non-trivial shared-cache hit rate (``--min-hit-rate``),
* tail latency recorded (p99 present and positive) and nothing shed —
  the bench is provisioned so every request should be admitted.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

MIN_SESSIONS = 100
MIN_HIT_RATE = 0.10


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="bench_serving.py JSON file")
    parser.add_argument("--min-sessions", type=int, default=MIN_SESSIONS)
    parser.add_argument("--min-hit-rate", type=float, default=MIN_HIT_RATE)
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text(encoding="utf-8"))
    failures: list[str] = []

    sessions = report.get("sessions", 0)
    if sessions < args.min_sessions:
        failures.append(f"only {sessions} sessions (need >= {args.min_sessions})")

    stale = report.get("stale_reads")
    if stale != 0:
        failures.append(f"stale_reads = {stale!r} (must be 0)")

    hit_rate = report.get("cache", {}).get("hit_rate", 0.0)
    if hit_rate < args.min_hit_rate:
        failures.append(
            f"cache hit rate {hit_rate:.3f} (need >= {args.min_hit_rate})"
        )

    p99 = report.get("latency_ms", {}).get("p99")
    if not isinstance(p99, (int, float)) or p99 <= 0:
        failures.append(f"p99 latency missing or non-positive: {p99!r}")

    shed_total = sum(report.get("shed", {}).values())
    if shed_total:
        failures.append(f"{shed_total} requests shed (expected 0 at bench load)")

    if not report.get("commits"):
        failures.append("no commits recorded — traffic was not mixed query/DML")

    print(
        f"{sessions} sessions, {report.get('requests')} requests, "
        f"p50 {report.get('latency_ms', {}).get('p50')}ms / p99 {p99}ms, "
        f"{report.get('throughput_rps')} req/s, hit rate {hit_rate:.3f}, "
        f"stale reads {stale}"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
