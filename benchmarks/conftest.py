"""Shared fixtures for the figure-reproduction benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the paper-style series each bench prints (they are also
attached to the pytest-benchmark JSON via ``extra_info``).  Set
``REPRO_SCALE=<int>`` to enlarge all workloads.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks are deterministic end-to-end experiments; one round is
    # the meaningful unit (pedantic mode is used inside each bench).
    pass


@pytest.fixture(scope="session")
def scale():
    from repro.bench import scale_factor

    return scale_factor()
