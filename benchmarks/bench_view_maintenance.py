"""Ablation: incremental view maintenance vs full re-execution (§4.2).

Microbenchmark of the per-sample query-answer update — the operation
Algorithms 1 and 3 disagree on.  For a world delta of ~d rows in a
database of n rows, the incremental update costs O(d) and the full
re-execution O(n); this bench measures both at several database sizes
for Query 1 (selection+projection) and the Query-3 plan
(decorrelated correlated subqueries).
"""

from __future__ import annotations

import random

import pytest

from repro.bench import QUERY1, QUERY3, fmt_seconds, scale_factor
from repro.db import Database, MaterializedView, plan_query
from repro.db.ra.eval import evaluate
from repro.ie.ner import build_token_database, generate_corpus
from repro.ie.ner.labels import LABELS

SIZES = [1_000, 25_000]
DELTA_ROWS = 50


def _setup(num_tokens: int, sql: str):
    db = build_token_database(generate_corpus(num_tokens, seed=0))
    plan = plan_query(db, sql)
    recorder = db.attach_recorder()
    view = MaterializedView(db, plan)
    recorder.pop()
    rng = random.Random(7)
    num_rows = len(db.table("TOKEN"))

    def mutate():
        for _ in range(DELTA_ROWS):
            pk = rng.randrange(num_rows)
            db.update("TOKEN", (pk,), {"LABEL": rng.choice(LABELS)})

    return db, plan, recorder, view, mutate


@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="view-maintenance-incremental")
def test_incremental_update(benchmark, num_tokens):
    db, plan, recorder, view, mutate = _setup(num_tokens, QUERY1)

    def step():
        mutate()
        view.apply(recorder.pop())

    benchmark.pedantic(step, rounds=30, iterations=1, warmup_rounds=2)
    benchmark.extra_info["tokens"] = num_tokens
    benchmark.extra_info["delta_rows"] = DELTA_ROWS


@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="view-maintenance-full")
def test_full_reevaluation(benchmark, num_tokens):
    db, plan, recorder, view, mutate = _setup(num_tokens, QUERY1)

    def step():
        mutate()
        recorder.pop()
        evaluate(plan, db)

    benchmark.pedantic(step, rounds=30, iterations=1, warmup_rounds=2)
    benchmark.extra_info["tokens"] = num_tokens


@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="view-maintenance-query3")
def test_query3_incremental_vs_full(benchmark, num_tokens):
    """The decorrelated aggregate-lookup plan also maintains in O(d)."""
    db, plan, recorder, view, mutate = _setup(num_tokens, QUERY3)

    def step():
        mutate()
        view.apply(recorder.pop())

    benchmark.pedantic(step, rounds=15, iterations=1, warmup_rounds=2)
    full_seconds = _time_once(lambda: evaluate(plan, db))
    benchmark.extra_info["tokens"] = num_tokens
    benchmark.extra_info["full_reeval_seconds"] = full_seconds
    print(
        f"\nQuery 3 @ {num_tokens} tokens: one full re-evaluation takes "
        f"{fmt_seconds(full_seconds)} (incremental per-delta time in table)"
    )


def _time_once(fn) -> float:
    import time

    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
