"""Ablation: incremental view maintenance vs full re-execution (§4.2),
plus the probabilistic live-update series (ISSUE 5).

Microbenchmark of the per-sample query-answer update — the operation
Algorithms 1 and 3 disagree on.  For a world delta of ~d rows in a
database of n rows, the incremental update costs O(d) and the full
re-execution O(n); this bench measures both at several database sizes
for Query 1 (selection+projection) and the Query-3 plan
(decorrelated correlated subqueries).

The ``live-update`` groups extend the same question to the *model*
side: after a single-row INSERT into the 40k-token NER world, how long
until query-ready marginals of the updated database?  ``repair_resume``
routes the DML through the live session (incremental graph repair,
chain carryover, local re-burn, estimator re-pool);
``rebuild_reburn`` builds the model, materializes the view, and
re-burns one thinning interval from scratch — what every pre-live
session had to do.  ``check_live_update.py`` gates the committed
``BENCH_live_update.json`` on a ≥10× repair advantage, and the bench
itself asserts the repaired graph is bit-identical to a rebuilt one.
"""

from __future__ import annotations

import itertools
import random
import time

import pytest

import repro
from repro.bench import QUERY1, QUERY3, fmt_seconds, make_task, scale_factor
from repro.core.live import graph_signature
from repro.core.materialized import MaterializedEvaluator
from repro.db import Database, MaterializedView, plan_query
from repro.db.ra.eval import evaluate
from repro.ie.ner import build_token_database, generate_corpus
from repro.ie.ner.labels import LABELS
from repro.ie.ner.model import SkipChainNerModel
from repro.ie.ner.pdb import NerInstance

from check_live_update import MIN_LIVE_UPDATE_SPEEDUP

SIZES = [1_000, 25_000]
DELTA_ROWS = 50


def _setup(num_tokens: int, sql: str):
    db = build_token_database(generate_corpus(num_tokens, seed=0))
    plan = plan_query(db, sql)
    recorder = db.attach_recorder()
    view = MaterializedView(db, plan)
    recorder.pop()
    rng = random.Random(7)
    num_rows = len(db.table("TOKEN"))

    def mutate():
        for _ in range(DELTA_ROWS):
            pk = rng.randrange(num_rows)
            db.update("TOKEN", (pk,), {"LABEL": rng.choice(LABELS)})

    return db, plan, recorder, view, mutate


@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="view-maintenance-incremental")
def test_incremental_update(benchmark, num_tokens):
    db, plan, recorder, view, mutate = _setup(num_tokens, QUERY1)

    def step():
        mutate()
        view.apply(recorder.pop())

    benchmark.pedantic(step, rounds=30, iterations=1, warmup_rounds=2)
    benchmark.extra_info["tokens"] = num_tokens
    benchmark.extra_info["delta_rows"] = DELTA_ROWS


@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="view-maintenance-full")
def test_full_reevaluation(benchmark, num_tokens):
    db, plan, recorder, view, mutate = _setup(num_tokens, QUERY1)

    def step():
        mutate()
        recorder.pop()
        evaluate(plan, db)

    benchmark.pedantic(step, rounds=30, iterations=1, warmup_rounds=2)
    benchmark.extra_info["tokens"] = num_tokens


@pytest.mark.parametrize("num_tokens", [s * scale_factor() for s in SIZES])
@pytest.mark.benchmark(group="view-maintenance-query3")
def test_query3_incremental_vs_full(benchmark, num_tokens):
    """The decorrelated aggregate-lookup plan also maintains in O(d)."""
    db, plan, recorder, view, mutate = _setup(num_tokens, QUERY3)

    def step():
        mutate()
        view.apply(recorder.pop())

    benchmark.pedantic(step, rounds=15, iterations=1, warmup_rounds=2)
    full_seconds = _time_once(lambda: evaluate(plan, db))
    benchmark.extra_info["tokens"] = num_tokens
    benchmark.extra_info["full_reeval_seconds"] = full_seconds
    print(
        f"\nQuery 3 @ {num_tokens} tokens: one full re-evaluation takes "
        f"{fmt_seconds(full_seconds)} (incremental per-delta time in table)"
    )


def _time_once(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# Probabilistic live updates: repair+resume vs rebuild+reburn (ISSUE 5)
# ----------------------------------------------------------------------
LIVE_TOKENS = 40_000 * scale_factor()
LIVE_STEPS_PER_SAMPLE = 1_000
_fresh_tok_ids = itertools.count(10_000_000)


@pytest.fixture(scope="module")
def live_session():
    """One live NER session at the acceptance scale, query-ready."""
    task = make_task(LIVE_TOKENS, steps_per_sample=LIVE_STEPS_PER_SAMPLE)
    instance = task.make_instance(chain_seed=12)
    session = repro.connect(instance.db).attach_model(instance)
    session.execute(QUERY1, samples=2)  # materialize views, warm chain
    return task, instance, session


def _insert_one(session) -> int:
    tok_id = next(_fresh_tok_ids)
    session.execute(
        f"INSERT INTO TOKEN VALUES ({tok_id}, 0, 'Zanzibar', 'O', 'B-PER')"
    )
    return tok_id


def _rebuild_reburn(db, weights):
    """The pre-live alternative: model + view from scratch over the
    updated world, then one thinning interval of re-burn before the
    first query-ready sample (the resumed chain needs only a local
    burn because its global state is already equilibrated)."""
    instance = NerInstance(
        db, weights, chain_seed=999, steps_per_sample=LIVE_STEPS_PER_SAMPLE
    )
    evaluator = MaterializedEvaluator(db, instance.chain, [QUERY1])
    evaluator.run(0, burn_in=1)
    evaluator.detach()
    return evaluator


@pytest.mark.benchmark(group="live-update")
def test_live_insert_repair_resume(benchmark, live_session):
    task, instance, session = live_session

    def step():
        _insert_one(session)
        # query-ready marginals of the updated world: the repaired
        # runner records the (re-pooled) initial sample
        session.execute(QUERY1, samples=0)

    benchmark.pedantic(step, rounds=10, iterations=1, warmup_rounds=1)
    benchmark.extra_info["tokens"] = LIVE_TOKENS
    benchmark.extra_info["series"] = "repair_resume"
    benchmark.extra_info["steps_per_sample"] = LIVE_STEPS_PER_SAMPLE


@pytest.mark.benchmark(group="live-update")
def test_live_insert_rebuild_reburn(benchmark, live_session):
    task, instance, session = live_session
    _insert_one(session)
    snap = instance.db.snapshot()

    def setup():
        return (Database.from_snapshot(snap, "rebuild"),), {}

    benchmark.pedantic(
        lambda db: _rebuild_reburn(db, task.weights),
        setup=setup,
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["tokens"] = LIVE_TOKENS
    benchmark.extra_info["series"] = "rebuild_reburn"
    benchmark.extra_info["steps_per_sample"] = LIVE_STEPS_PER_SAMPLE


@pytest.mark.benchmark(group="live-update-speedup")
def test_live_update_speedup_and_bit_identity(benchmark, live_session):
    """ISSUE 5 acceptance: single-row INSERT at the 40k-token scale —
    repair+resume reaches query-ready marginals ≥10× faster than
    rebuild+reburn, and the repaired graph is bit-identical to one
    rebuilt from the updated database."""
    task, instance, session = live_session

    def experiment():
        repairs = []
        for _ in range(3):
            started = time.perf_counter()
            _insert_one(session)
            session.execute(QUERY1, samples=0)
            repairs.append(time.perf_counter() - started)
        snap = instance.db.snapshot()
        db = Database.from_snapshot(snap, "rebuild")
        started = time.perf_counter()
        _rebuild_reburn(db, task.weights)
        rebuild = time.perf_counter() - started
        return min(repairs), rebuild

    repair_seconds, rebuild_seconds = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    speedup = rebuild_seconds / repair_seconds
    benchmark.extra_info["tokens"] = LIVE_TOKENS
    benchmark.extra_info["repair_seconds"] = repair_seconds
    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nlive update @ {LIVE_TOKENS} tokens: repair+resume "
        f"{fmt_seconds(repair_seconds)} vs rebuild+reburn "
        f"{fmt_seconds(rebuild_seconds)} — {speedup:.1f}x"
    )
    assert speedup >= MIN_LIVE_UPDATE_SPEEDUP
    # Bit-identity: the repaired graph enumerates the same factors in
    # the same order with the same total score as a fresh build over
    # the updated TOKEN relation.
    model = session.live_runner.model
    rebuilt = SkipChainNerModel(instance.db, weights=task.weights)
    assert graph_signature(model.graph) == graph_signature(rebuilt.graph)
