"""Fault recovery: checkpoint-resume vs snapshot-rebuild after a kill.

A supervised worker is SIGKILLed mid-refinement at the 40k-token NER
scale, leaving cadence checkpoints behind.  The two series measure the
competing recovery strategies for bringing its chain back to
query-ready marginals:

``checkpoint_resume``
    adopt the latest checkpoint — unpickle the serialized (world,
    chain, estimator) state and replay only the few samples recorded
    since the checkpoint boundary;

``snapshot_rebuild``
    what a checkpoint-free supervisor must do — rebuild the instance
    from the factory snapshot (re-ground the whole model) and replay
    *every* sample the dead chain had produced.

``check_fault_recovery.py`` gates the committed
``BENCH_fault_recovery.json`` on a ≥5× resume advantage, and the
speedup test asserts the resumed chain is bit-identical to the rebuilt
one — same floats, same cumulative sample counts.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import QUERY1, fmt_seconds, make_task, scale_factor
from repro.core import ProcessPoolBackend, SequentialBackend
from repro.resilience import (
    Fault,
    FaultPlan,
    MemoryCheckpointStore,
    ResilienceConfig,
    RetryPolicy,
)

from check_fault_recovery import MIN_FAULT_RECOVERY_SPEEDUP

FAULT_TOKENS = 40_000 * scale_factor()
FAULT_STEPS_PER_SAMPLE = 1_000
CHECKPOINT_EVERY = 25
SAMPLES_BEFORE_KILL = 150
KILL_AT_SAMPLE = 110  # mid-refinement, past several cadence checkpoints


@pytest.fixture(scope="module")
def killed_run():
    """One supervised process-backend run whose single worker is
    SIGKILLed mid-refinement and auto-resurrected; the store keeps the
    cadence checkpoints the recovery series resume from."""
    task = make_task(FAULT_TOKENS, steps_per_sample=FAULT_STEPS_PER_SAMPLE)
    store = MemoryCheckpointStore()
    config = ResilienceConfig(
        store=store,
        checkpoint_every=CHECKPOINT_EVERY,
        retry=RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0),
        fault_plan=FaultPlan({0: [Fault("kill", at=KILL_AT_SAMPLE)]}),
    )
    with ProcessPoolBackend(resilience=config) as backend:
        backend.start(task.chain_factory(base_seed=21), 1, [QUERY1])
        result = backend.run(SAMPLES_BEFORE_KILL)
        stats = backend.stats()
    assert stats["respawns"] == 1
    return task, store, result


def _frozen_store(store):
    """A per-round copy holding only the latest checkpoint, so resume
    rounds never mutate (or advance) the shared fixture store."""
    copy = MemoryCheckpointStore()
    for key in store.keys():
        copy.put(store.latest(key))
    return copy


def _resume(task, store):
    """Checkpoint path: adopt the store, then one fresh sample."""
    config = ResilienceConfig(
        store=_frozen_store(store), checkpoint_every=CHECKPOINT_EVERY
    )
    with SequentialBackend(resilience=config) as backend:
        backend.start(task.chain_factory(base_seed=21), 1, [QUERY1])
        return backend.run(1, include_initial=False)


def _rebuild(task):
    """Checkpoint-free path: re-ground from the factory snapshot and
    replay the dead chain's entire recorded history, then the same one
    fresh sample."""
    with SequentialBackend() as backend:
        backend.start(task.chain_factory(base_seed=21), 1, [QUERY1])
        return backend.run(SAMPLES_BEFORE_KILL + 1)


@pytest.mark.benchmark(group="fault-recovery")
def test_recovery_checkpoint_resume(benchmark, killed_run):
    task, store, _ = killed_run
    benchmark.pedantic(
        lambda: _resume(task, store), rounds=5, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["tokens"] = FAULT_TOKENS
    benchmark.extra_info["series"] = "checkpoint_resume"
    benchmark.extra_info["steps_per_sample"] = FAULT_STEPS_PER_SAMPLE
    benchmark.extra_info["samples_before_kill"] = SAMPLES_BEFORE_KILL


@pytest.mark.benchmark(group="fault-recovery")
def test_recovery_snapshot_rebuild(benchmark, killed_run):
    task, _, _ = killed_run
    benchmark.pedantic(
        lambda: _rebuild(task), rounds=3, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["tokens"] = FAULT_TOKENS
    benchmark.extra_info["series"] = "snapshot_rebuild"
    benchmark.extra_info["steps_per_sample"] = FAULT_STEPS_PER_SAMPLE
    benchmark.extra_info["samples_before_kill"] = SAMPLES_BEFORE_KILL


@pytest.mark.benchmark(group="fault-recovery-speedup")
def test_fault_recovery_speedup_and_bit_identity(benchmark, killed_run):
    """Acceptance: after a worker kill at the 40k-token scale,
    checkpoint-resume reaches query-ready marginals ≥5× faster than
    snapshot-rebuild, and the resumed chain is bit-identical to an
    uninterrupted one replayed from scratch."""
    task, store, _ = killed_run

    def experiment():
        resumes = []
        for _ in range(3):
            started = time.perf_counter()
            resumed = _resume(task, store)
            resumes.append(time.perf_counter() - started)
        started = time.perf_counter()
        rebuilt = _rebuild(task)
        rebuild = time.perf_counter() - started
        return min(resumes), rebuild, resumed, rebuilt

    resume_seconds, rebuild_seconds, resumed, rebuilt = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    speedup = rebuild_seconds / resume_seconds
    benchmark.extra_info["tokens"] = FAULT_TOKENS
    benchmark.extra_info["resume_seconds"] = resume_seconds
    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nfault recovery @ {FAULT_TOKENS} tokens: checkpoint-resume "
        f"{fmt_seconds(resume_seconds)} vs snapshot-rebuild "
        f"{fmt_seconds(rebuild_seconds)} — {speedup:.1f}x"
    )
    assert speedup >= MIN_FAULT_RECOVERY_SPEEDUP
    # Bit-identity: resuming the killed chain from its checkpoint and
    # replaying the whole history from scratch land on the same pooled
    # marginals with the same cumulative sample counts.
    assert (
        resumed.marginals.probabilities() == rebuilt.marginals.probabilities()
    )
    assert resumed.marginals.num_samples == rebuilt.marginals.num_samples
